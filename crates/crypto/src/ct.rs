//! Constant-time comparison helpers.
//!
//! Secret-dependent early exits in comparisons are a classic source of
//! remote timing oracles. Everything in this module runs in time
//! dependent only on the *lengths* of its inputs.

/// Compares two byte slices in constant time with respect to content.
///
/// Returns `true` iff `a == b`. The comparison time depends only on the
/// lengths of the slices; if the lengths differ the function still scans
/// the shorter slice before returning `false` so that equal-length
/// prefixes do not shorten the runtime.
///
/// # Example
///
/// ```
/// assert!(sinclave_crypto::ct::eq(b"tag", b"tag"));
/// assert!(!sinclave_crypto::ct::eq(b"tag", b"tAg"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    let n = a.len().min(b.len());
    for i in 0..n {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// Selects between two bytes in constant time.
///
/// Returns `x` if `choice` is `true`, `y` otherwise, without branching
/// on `choice`.
#[must_use]
pub fn select_u8(choice: bool, x: u8, y: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (x & mask) | (y & !mask)
}

/// Conditionally copies `src` into `dst` in constant time.
///
/// When `choice` is `true`, `dst` receives `src`; otherwise `dst` is
/// left unchanged. Both slices must have the same length.
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn conditional_assign(choice: bool, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "conditional_assign length mismatch");
    let mask = (choice as u8).wrapping_neg();
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*s & mask) | (*d & !mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_std_eq() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"", b"x"));
    }

    #[test]
    fn eq_detects_difference_in_every_position() {
        let a = [0u8; 97];
        for i in 0..97 {
            let mut b = a;
            b[i] = 1;
            assert!(!eq(&a, &b), "difference at {i} not detected");
        }
    }

    #[test]
    fn select_picks_correct_branch() {
        assert_eq!(select_u8(true, 0xaa, 0x55), 0xaa);
        assert_eq!(select_u8(false, 0xaa, 0x55), 0x55);
    }

    #[test]
    fn conditional_assign_behaviour() {
        let mut dst = [1u8, 2, 3];
        conditional_assign(false, &mut dst, &[9, 9, 9]);
        assert_eq!(dst, [1, 2, 3]);
        conditional_assign(true, &mut dst, &[9, 8, 7]);
        assert_eq!(dst, [9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn conditional_assign_panics_on_len_mismatch() {
        let mut dst = [0u8; 2];
        conditional_assign(true, &mut dst, &[1, 2, 3]);
    }
}
