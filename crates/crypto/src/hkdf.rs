//! HKDF-SHA-256 (RFC 5869) key derivation.
//!
//! Used throughout the reproduction wherever SGX hardware derives keys
//! with `EGETKEY` (sealing keys bound to `MRENCLAVE` or `MRSIGNER`,
//! report keys) and wherever the secure channel needs session keys.

use crate::hmac::{hmac, HmacSha256, MAC_LEN};

/// Extracts a pseudorandom key from input keying material.
///
/// `salt` may be empty, in which case a zero-filled salt of hash length
/// is used, per the RFC.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; MAC_LEN] {
    let zero_salt = [0u8; MAC_LEN];
    let salt = if salt.is_empty() { &zero_salt[..] } else { salt };
    hmac(salt, ikm).to_bytes()
}

/// Expands a pseudorandom key into `out.len()` bytes of output keying
/// material, bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC limit).
pub fn expand(prk: &[u8; MAC_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * MAC_LEN, "hkdf output too long");
    let mut previous: Option<[u8; MAC_LEN]> = None;
    let mut counter = 1u8;
    for chunk in out.chunks_mut(MAC_LEN) {
        let mut mac = HmacSha256::new(prk);
        if let Some(prev) = previous {
            mac.update(&prev);
        }
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize().to_bytes();
        chunk.copy_from_slice(&block[..chunk.len()]);
        previous = Some(block);
        counter = counter.checked_add(1).expect("hkdf counter overflow");
    }
}

/// Convenience: extract-then-expand into a fixed-size array.
///
/// # Example
///
/// ```
/// let key: [u8; 32] = sinclave_crypto::hkdf::derive(b"salt", b"ikm", b"context");
/// assert_ne!(key, [0u8; 32]);
/// ```
#[must_use]
pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; N];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(b"", &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, b"", &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_is_deterministic_and_domain_separated() {
        let a: [u8; 32] = derive(b"s", b"ikm", b"ctx-a");
        let a2: [u8; 32] = derive(b"s", b"ikm", b"ctx-a");
        let b: [u8; 32] = derive(b"s", b"ikm", b"ctx-b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn expand_multiple_blocks() {
        let prk = extract(b"salt", b"ikm");
        let mut long = [0u8; 100];
        expand(&prk, b"info", &mut long);
        let mut short = [0u8; 32];
        expand(&prk, b"info", &mut short);
        assert_eq!(&long[..32], &short[..]);
        assert_ne!(&long[32..64], &long[..32]);
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn expand_rejects_overlong_output() {
        let prk = [0u8; MAC_LEN];
        let mut out = vec![0u8; 255 * MAC_LEN + 1];
        expand(&prk, b"", &mut out);
    }
}
