//! SHA-256 — one-shot and *interruptible* implementations over one
//! shared multi-block compression core.
//!
//! SGX computes `MRENCLAVE` as a SHA-256 over the enclave-construction
//! operations (§2.2.1 of the paper). Because SHA-256 is a
//! Merkle–Damgård construction, after every 64-byte block the entire
//! computation is captured by 256 bits of internal state plus a 64-bit
//! byte counter. SinClave exploits this: the signer *interrupts* the
//! measurement just before finalization and publishes that intermediate
//! state as the **base enclave hash**; the verifier later *resumes* it,
//! appends the measurement operations of the instance page, and
//! finalizes to predict the singleton's unique `MRENCLAVE` (§4.4).
//!
//! # Architecture: one core, two front ends
//!
//! All hashing funnels into [`compress_blocks`], a multi-block
//! compression core that consumes any whole number of 64-byte blocks
//! in one call. Two implementations back it, selected at runtime by
//! [`Backend`]:
//!
//! * **Portable** — a fully unrolled compression loop with the message
//!   schedule kept in a rolling 16-word window the optimizer holds in
//!   registers; works everywhere.
//! * **SHA-NI** — the x86 SHA extensions (`SHA256RNDS2` /
//!   `SHA256MSG1` / `SHA256MSG2`), detected via
//!   `is_x86_feature_detected!` and used automatically when present.
//!
//! Both front ends share the core:
//!
//! * [`fast::digest`] — the one-shot hash, the stand-in for the
//!   paper's Ring/OpenSSL baseline in Fig. 6.
//! * [`Sha256`] — the interruptible hasher with [`Sha256::export_state`]
//!   and [`Sha256::resume`], the paper's "SinClave" /
//!   "SinClave-BaseHash" variants. Its `update` streams contiguous
//!   block runs of the input straight into the core; the 64-byte
//!   buffer is touched only for unaligned heads and tails, so
//!   block-aligned callers (all SGX measurement operations are
//!   64-byte records) never pay for buffering.
//!
//! All backends produce bit-identical digests (verified against FIPS
//! 180-4 test vectors and against each other by property tests).

use crate::error::CryptoError;
use std::fmt;

/// SHA-256 block size in bytes.
pub const BLOCK_LEN: usize = 64;
/// SHA-256 digest size in bytes.
pub const DIGEST_LEN: usize = 32;

/// FIPS 180-4 initial hash value.
pub(crate) const IV: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// FIPS 180-4 round constants.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// A 32-byte SHA-256 digest.
///
/// Displayed as lowercase hex. Comparison via `==` is *not*
/// constant-time; use [`crate::ct::eq`] when comparing secret MACs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Returns the digest as an owned byte array.
    #[must_use]
    pub fn to_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Renders the digest as lowercase hex.
    ///
    /// Uses a nibble lookup table rather than per-byte formatting —
    /// measurements are hex-rendered on every log and debug line, so
    /// this sits on observability hot paths.
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut out = [0u8; 2 * DIGEST_LEN];
        for (pair, b) in out.chunks_exact_mut(2).zip(self.0) {
            pair[0] = HEX_DIGITS[usize::from(b >> 4)];
            pair[1] = HEX_DIGITS[usize::from(b & 0x0f)];
        }
        String::from_utf8(out.to_vec()).expect("hex digits are ASCII")
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the string is not
    /// exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return Err(CryptoError::InvalidLength { context: "hex digest" });
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi =
                hex_val(chunk[0]).ok_or(CryptoError::InvalidLength { context: "hex digest" })?;
            let lo =
                hex_val(chunk[1]).ok_or(CryptoError::InvalidLength { context: "hex digest" })?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Digest(out))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Exportable intermediate SHA-256 state: the **base enclave hash**.
///
/// Captures the Merkle–Damgård chaining value after a whole number of
/// 64-byte blocks, together with the number of bytes consumed so far.
/// This is exactly the "256 bit of internal hash state and 64 bit of
/// already compressed input" the paper describes (§2.2.1) and is what
/// the SinClave signer publishes instead of a finalized `MRENCLAVE`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sha256State {
    h: [u32; 8],
    byte_len: u64,
}

/// Serialized size of a [`Sha256State`] in bytes.
pub const STATE_LEN: usize = 40;

impl Sha256State {
    /// Creates a state from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnalignedHashState`] if `byte_len` is not
    /// a multiple of the 64-byte block size — such a state could never
    /// have been exported from a block-aligned computation.
    pub fn from_parts(h: [u32; 8], byte_len: u64) -> Result<Self, CryptoError> {
        if !byte_len.is_multiple_of(BLOCK_LEN as u64) {
            return Err(CryptoError::UnalignedHashState);
        }
        Ok(Sha256State { h, byte_len })
    }

    /// The chaining value (H1..H8).
    #[must_use]
    pub fn chaining_value(&self) -> [u32; 8] {
        self.h
    }

    /// Number of message bytes already compressed into this state.
    #[must_use]
    pub fn byte_len(&self) -> u64 {
        self.byte_len
    }

    /// Serializes the state to its 40-byte wire encoding
    /// (big-endian H1..H8 followed by the big-endian byte counter).
    #[must_use]
    pub fn encode(&self) -> [u8; STATE_LEN] {
        let mut out = [0u8; STATE_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out[32..40].copy_from_slice(&self.byte_len.to_be_bytes());
        out
    }

    /// Parses a state from its 40-byte wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for a wrong-size buffer
    /// and [`CryptoError::UnalignedHashState`] for a byte counter that
    /// is not block-aligned.
    pub fn decode(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != STATE_LEN {
            return Err(CryptoError::InvalidLength { context: "sha256 state" });
        }
        let mut h = [0u32; 8];
        for (i, word) in h.iter_mut().enumerate() {
            *word = u32::from_be_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let byte_len = u64::from_be_bytes(bytes[32..40].try_into().expect("8 bytes"));
        Sha256State::from_parts(h, byte_len)
    }
}

/// A compression-core implementation.
///
/// [`Backend::detect`] picks the fastest available one; the explicit
/// variants exist so benches and property tests can pin and compare
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// The unrolled pure-Rust core (always available).
    Portable,
    /// The x86 SHA extensions core.
    ShaNi,
}

impl Backend {
    /// The fastest backend available on this CPU.
    #[must_use]
    pub fn detect() -> Backend {
        if Backend::sha_ni_available() {
            Backend::ShaNi
        } else {
            Backend::Portable
        }
    }

    /// Whether the SHA-NI core can run on this CPU.
    #[must_use]
    pub fn sha_ni_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVAILABLE: OnceLock<bool> = OnceLock::new();
            *AVAILABLE.get_or_init(|| {
                std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Compresses a run of whole blocks into `h` with this backend.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` is not a multiple of 64, or when
    /// [`Backend::ShaNi`] is forced on a CPU without the SHA
    /// extensions.
    pub fn compress_blocks(self, h: &mut [u32; 8], blocks: &[u8]) {
        assert!(
            blocks.len().is_multiple_of(BLOCK_LEN),
            "compress_blocks needs whole 64-byte blocks"
        );
        match self {
            Backend::Portable => portable::compress_blocks(h, blocks),
            Backend::ShaNi => {
                #[cfg(target_arch = "x86_64")]
                {
                    assert!(Backend::sha_ni_available(), "SHA-NI not available on this CPU");
                    // SAFETY: feature availability checked above.
                    #[allow(unsafe_code)]
                    unsafe {
                        shani::compress_blocks(h, blocks)
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    panic!("SHA-NI backend requires x86_64");
                }
            }
        }
    }
}

/// Compresses a run of whole 64-byte blocks into `h` using the fastest
/// available backend — the shared multi-block core behind every hash
/// in this module.
///
/// # Panics
///
/// Panics if `blocks.len()` is not a multiple of 64.
pub fn compress_blocks(h: &mut [u32; 8], blocks: &[u8]) {
    Backend::detect().compress_blocks(h, blocks);
}

mod portable {
    //! The unrolled pure-Rust compression core.
    //!
    //! The message schedule lives in a rolling 16-word window indexed
    //! mod 16, which the optimizer keeps in registers; rounds are
    //! unrolled in groups of eight with rotated register names so no
    //! shuffling is needed between rounds. Blocks are consumed in a
    //! loop inside one call so the working state never round-trips
    //! through memory between blocks of a run.

    use super::{BLOCK_LEN, K};

    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $k:expr, $w:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($k).wrapping_add($w);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }

    #[inline(always)]
    fn schedule(w: &mut [u32; 16], i: usize) -> u32 {
        let w15 = w[(i + 1) & 15];
        let w2 = w[(i + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        w[i & 15] = w[i & 15].wrapping_add(s0).wrapping_add(w[(i + 9) & 15]).wrapping_add(s1);
        w[i & 15]
    }

    /// Compresses `blocks` (a multiple of 64 bytes) into `h`.
    pub(super) fn compress_blocks(h: &mut [u32; 8], blocks: &[u8]) {
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
        for block in blocks.chunks_exact(BLOCK_LEN) {
            let mut w = [0u32; 16];
            for (i, word) in w.iter_mut().enumerate() {
                *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
            }

            let (sa, sb, sc, sd, se, sf, sg, sh) = (a, b, c, d, e, f, g, hh);
            // Rounds 0..16 use the raw message words, 16..64 the
            // rolling schedule. Groups of 8 are unrolled with rotated
            // registers.
            let mut i = 0;
            while i < 64 {
                let w0 = if i < 16 { w[i & 15] } else { schedule(&mut w, i) };
                round!(a, b, c, d, e, f, g, hh, K[i], w0);
                let w1 = if i + 1 < 16 { w[(i + 1) & 15] } else { schedule(&mut w, i + 1) };
                round!(hh, a, b, c, d, e, f, g, K[i + 1], w1);
                let w2 = if i + 2 < 16 { w[(i + 2) & 15] } else { schedule(&mut w, i + 2) };
                round!(g, hh, a, b, c, d, e, f, K[i + 2], w2);
                let w3 = if i + 3 < 16 { w[(i + 3) & 15] } else { schedule(&mut w, i + 3) };
                round!(f, g, hh, a, b, c, d, e, K[i + 3], w3);
                let w4 = if i + 4 < 16 { w[(i + 4) & 15] } else { schedule(&mut w, i + 4) };
                round!(e, f, g, hh, a, b, c, d, K[i + 4], w4);
                let w5 = if i + 5 < 16 { w[(i + 5) & 15] } else { schedule(&mut w, i + 5) };
                round!(d, e, f, g, hh, a, b, c, K[i + 5], w5);
                let w6 = if i + 6 < 16 { w[(i + 6) & 15] } else { schedule(&mut w, i + 6) };
                round!(c, d, e, f, g, hh, a, b, K[i + 6], w6);
                let w7 = if i + 7 < 16 { w[(i + 7) & 15] } else { schedule(&mut w, i + 7) };
                round!(b, c, d, e, f, g, hh, a, K[i + 7], w7);
                i += 8;
            }

            a = a.wrapping_add(sa);
            b = b.wrapping_add(sb);
            c = c.wrapping_add(sc);
            d = d.wrapping_add(sd);
            e = e.wrapping_add(se);
            f = f.wrapping_add(sf);
            g = g.wrapping_add(sg);
            hh = hh.wrapping_add(sh);
        }
        *h = [a, b, c, d, e, f, g, hh];
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    //! The x86 SHA-extensions compression core.
    //!
    //! Follows the canonical `SHA256RNDS2`/`SHA256MSG1`/`SHA256MSG2`
    //! schedule (Intel's reference flow): state is repacked into the
    //! ABEF/CDGH lane layout the instructions expect, four message
    //! vectors roll through the 64 rounds, and the run loop keeps the
    //! repacked state in registers across blocks.
    //!
    //! This is the one `unsafe` island in the crate (the crate is
    //! otherwise `#![deny(unsafe_code)]`): the intrinsics require it.
    //! Callers must guarantee the `sha`, `ssse3` and `sse4.1` CPU
    //! features, which [`super::Backend`] checks before dispatching.

    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };

    #[inline(always)]
    // SAFETY: callers pass `group < 16`, so the 16-byte read at
    // `K[group * 4]` stays inside K's 64 entries; `_mm_loadu_si128`
    // tolerates the unaligned pointer.
    unsafe fn load_k(group: usize) -> __m128i {
        _mm_loadu_si128(K.as_ptr().add(group * 4).cast())
    }

    /// Compresses `blocks` (a multiple of 64 bytes) into `h`.
    ///
    /// # Safety
    ///
    /// The CPU must support the `sha`, `ssse3` and `sse4.1` features.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    // SAFETY: the caller contract above requires sha/ssse3/sse4.1,
    // which [`super::Backend`] probes before dispatching here; all
    // loads/stores use unaligned intrinsics on in-bounds pointers.
    pub(super) unsafe fn compress_blocks(h: &mut [u32; 8], blocks: &[u8]) {
        // Byte shuffle turning the big-endian message into u32 lanes.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d] / [e,f,g,h] into ABEF / CDGH lane order.
        let tmp = _mm_loadu_si128(h.as_ptr().cast());
        let state1 = _mm_loadu_si128(h.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32(tmp, 0xb1); // CDAB
        let state1 = _mm_shuffle_epi32(state1, 0x1b); // EFGH
        let mut abef = _mm_alignr_epi8(tmp, state1, 8); // ABEF
        let mut cdgh = _mm_blend_epi16(state1, tmp, 0xf0); // CDGH

        for block in blocks.chunks_exact(BLOCK_LEN) {
            let abef_save = abef;
            let cdgh_save = cdgh;

            // Two SHA256RNDS2 per 4-round group: the low qword of the
            // K+W vector feeds the first pair of rounds, the high the
            // second.
            macro_rules! rounds4 {
                ($wk:expr) => {{
                    let wk = $wk;
                    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                    let wk_hi = _mm_shuffle_epi32(wk, 0x0e);
                    abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_hi);
                }};
            }
            // One message-schedule step: with the current vector `cur`
            // (W[i..i+4]) and its predecessor `prev`, extend `next`
            // toward W[i+16..i+20].
            macro_rules! extend {
                ($cur:ident, $prev:ident, $next:ident) => {{
                    let shifted = _mm_alignr_epi8($cur, $prev, 4);
                    $next = _mm_add_epi32($next, shifted);
                    $next = _mm_sha256msg2_epu32($next, $cur);
                }};
            }

            let p = block.as_ptr();
            // Rounds 0..16: raw message words.
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p.cast()), mask);
            rounds4!(_mm_add_epi32(msg0, load_k(0)));
            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast()), mask);
            rounds4!(_mm_add_epi32(msg1, load_k(1)));
            msg0 = _mm_sha256msg1_epu32(msg0, msg1);
            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast()), mask);
            rounds4!(_mm_add_epi32(msg2, load_k(2)));
            msg1 = _mm_sha256msg1_epu32(msg1, msg2);
            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast()), mask);
            rounds4!(_mm_add_epi32(msg3, load_k(3)));
            extend!(msg3, msg2, msg0);
            msg2 = _mm_sha256msg1_epu32(msg2, msg3);

            // Rounds 16..48: full schedule pipeline, message vectors
            // rotating msg0 → msg1 → msg2 → msg3.
            macro_rules! scheduled4 {
                ($group:expr, $cur:ident, $prev:ident, $next:ident) => {{
                    rounds4!(_mm_add_epi32($cur, load_k($group)));
                    extend!($cur, $prev, $next);
                    $prev = _mm_sha256msg1_epu32($prev, $cur);
                }};
            }
            scheduled4!(4, msg0, msg3, msg1);
            scheduled4!(5, msg1, msg0, msg2);
            scheduled4!(6, msg2, msg1, msg3);
            scheduled4!(7, msg3, msg2, msg0);
            scheduled4!(8, msg0, msg3, msg1);
            scheduled4!(9, msg1, msg0, msg2);
            scheduled4!(10, msg2, msg1, msg3);
            scheduled4!(11, msg3, msg2, msg0);
            scheduled4!(12, msg0, msg3, msg1);

            // Rounds 52..60: schedule winds down (no more SHA256MSG1 —
            // the remaining extensions' partials are already in place).
            rounds4!(_mm_add_epi32(msg1, load_k(13)));
            extend!(msg1, msg0, msg2);
            rounds4!(_mm_add_epi32(msg2, load_k(14)));
            extend!(msg2, msg1, msg3);
            // Rounds 60..64.
            rounds4!(_mm_add_epi32(msg3, load_k(15)));

            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Repack ABEF/CDGH back into [a..d] / [e..h].
        let tmp = _mm_shuffle_epi32(abef, 0x1b); // FEBA
        let cdgh = _mm_shuffle_epi32(cdgh, 0xb1); // DCHG
        let abcd = _mm_blend_epi16(tmp, cdgh, 0xf0); // DCBA
        let efgh = _mm_alignr_epi8(cdgh, tmp, 8); // HGFE
        _mm_storeu_si128(h.as_mut_ptr().cast(), abcd);
        _mm_storeu_si128(h.as_mut_ptr().add(4).cast(), efgh);
    }
}

/// Interruptible, resumable SHA-256 hasher.
///
/// This is the implementation the paper calls "SinClave" in Fig. 6.
/// Contiguous 64-byte block runs of the input are streamed directly
/// into the shared multi-block core ([`compress_blocks`]); the
/// internal buffer only fills for unaligned heads and tails. The
/// state can be exported at any 64-byte boundary and resumed later —
/// possibly by a different party on a different machine.
///
/// # Example
///
/// ```
/// use sinclave_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
    backend: Backend,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .field("buffered", &self.buf_len)
            .field("backend", &self.backend)
            .finish()
    }
}

impl Sha256 {
    /// Creates a hasher initialized with the FIPS 180-4 IV, using the
    /// fastest available backend.
    #[must_use]
    pub fn new() -> Self {
        Self::with_backend(Backend::detect())
    }

    /// Creates a hasher pinned to a specific backend (for benches and
    /// differential tests).
    #[must_use]
    pub fn with_backend(backend: Backend) -> Self {
        Sha256 { h: IV, buf: [0u8; BLOCK_LEN], buf_len: 0, total_len: 0, backend }
    }

    /// Resumes a computation from an exported intermediate state.
    ///
    /// The resumed hasher behaves exactly as if it had consumed
    /// `state.byte_len()` bytes already: subsequent [`update`] calls
    /// append to the original message and [`finalize`] produces the
    /// digest of the full concatenated message.
    ///
    /// [`update`]: Sha256::update
    /// [`finalize`]: Sha256::finalize
    #[must_use]
    pub fn resume(state: Sha256State) -> Self {
        Self::resume_with_backend(state, Backend::detect())
    }

    /// Resumes on a pinned backend.
    #[must_use]
    pub fn resume_with_backend(state: Sha256State, backend: Backend) -> Self {
        Sha256 { h: state.h, buf: [0u8; BLOCK_LEN], buf_len: 0, total_len: state.byte_len, backend }
    }

    /// The backend this hasher compresses with.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Total number of message bytes consumed so far.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Absorbs `data` into the hash.
    ///
    /// The longest aligned run of whole blocks is handed to the
    /// multi-block core in one call; only a partial leading block
    /// (from a previous unaligned update) or trailing remainder goes
    /// through the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        self.total_len =
            self.total_len.checked_add(data.len() as u64).expect("sha256 message length overflow");

        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.backend.compress_blocks(&mut self.h, &block);
                self.buf_len = 0;
            }
        }

        let run_len = data.len() - data.len() % BLOCK_LEN;
        if run_len > 0 {
            self.backend.compress_blocks(&mut self.h, &data[..run_len]);
        }
        let rest = &data[run_len..];
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Exports the intermediate state — the *base enclave hash*.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnalignedHashState`] if the number of
    /// consumed bytes is not a multiple of 64: the Merkle–Damgård state
    /// alone cannot represent a partially filled block. SGX measurement
    /// operations are always multiples of 64 bytes, so the SinClave
    /// signer never hits this case.
    pub fn export_state(&self) -> Result<Sha256State, CryptoError> {
        if self.buf_len != 0 {
            return Err(CryptoError::UnalignedHashState);
        }
        Sha256State::from_parts(self.h, self.total_len)
    }

    /// Finalizes the hash, consuming the hasher.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Standard padding: 0x80, zeros, 64-bit big-endian bit length —
        // assembled into one or two tail blocks and compressed in a
        // single core call.
        let mut tail = [0u8; 2 * BLOCK_LEN];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_len = if self.buf_len < 56 { BLOCK_LEN } else { 2 * BLOCK_LEN };
        tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
        self.backend.compress_blocks(&mut self.h, &tail[..tail_len]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// Hashes `data` with the interruptible implementation.
///
/// Convenience wrapper over [`Sha256`].
#[must_use]
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices.
#[must_use]
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

pub mod fast {
    //! One-shot SHA-256 tuned for throughput — the Fig. 6 baseline.
    //!
    //! The paper compares its interruptible implementation against the
    //! `ring` crate (hand-optimized assembly, ~405 MB/s on their Xeon).
    //! The same role is filled here by the shared multi-block core
    //! ([`super::compress_blocks`]): the whole aligned run of the
    //! input goes to the core in one call (SHA-NI when the CPU has
    //! it), followed by the padded tail. Skipping the interruptible
    //! hasher's buffer/counter bookkeeping entirely is what keeps this
    //! the throughput ceiling that Fig. 6's interruptible variants are
    //! measured against.

    use super::{Backend, Digest, BLOCK_LEN, DIGEST_LEN, IV};

    /// Hashes `data` in one shot with the fastest available backend.
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        digest_with_backend(Backend::detect(), data)
    }

    /// Hashes `data` in one shot on a pinned backend.
    #[must_use]
    pub fn digest_with_backend(backend: Backend, data: &[u8]) -> Digest {
        let mut h = IV;
        let run_len = data.len() - data.len() % BLOCK_LEN;
        if run_len > 0 {
            backend.compress_blocks(&mut h, &data[..run_len]);
        }

        // Final padded block(s).
        let rest = &data[run_len..];
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut tail = [0u8; 2 * BLOCK_LEN];
        tail[..rest.len()].copy_from_slice(rest);
        tail[rest.len()] = 0x80;
        let tail_len = if rest.len() < 56 { BLOCK_LEN } else { 2 * BLOCK_LEN };
        tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
        backend.compress_blocks(&mut h, &tail[..tail_len]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Backends available on the running CPU.
    fn backends() -> Vec<Backend> {
        let mut all = vec![Backend::Portable];
        if Backend::sha_ni_available() {
            all.push(Backend::ShaNi);
        }
        all
    }

    /// FIPS 180-4 / NIST CAVS reference vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn interruptible_matches_vectors_on_every_backend() {
        for backend in backends() {
            for (msg, expect) in VECTORS {
                let mut h = Sha256::with_backend(backend);
                h.update(msg);
                assert_eq!(h.finalize().to_hex(), *expect, "{backend:?}");
            }
        }
    }

    #[test]
    fn fast_matches_vectors_on_every_backend() {
        for backend in backends() {
            for (msg, expect) in VECTORS {
                assert_eq!(
                    fast::digest_with_backend(backend, msg).to_hex(),
                    *expect,
                    "{backend:?}"
                );
            }
        }
    }

    #[test]
    fn million_a_vector() {
        let msg = vec![b'a'; 1_000_000];
        let expect = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
        assert_eq!(digest(&msg).to_hex(), expect);
        assert_eq!(fast::digest(&msg).to_hex(), expect);
        for backend in backends() {
            assert_eq!(fast::digest_with_backend(backend, &msg).to_hex(), expect);
        }
    }

    #[test]
    fn incremental_update_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for backend in backends() {
            for split in [0usize, 1, 63, 64, 65, 128, 500, 999, 1000] {
                let mut h = Sha256::with_backend(backend);
                h.update(&data[..split]);
                h.update(&data[split..]);
                assert_eq!(h.finalize(), digest(&data), "{backend:?} split {split}");
            }
        }
    }

    #[test]
    fn backends_agree_across_sizes_and_splits() {
        // Differential check across every length crossing the buffer
        // and multi-block boundaries, with a prime-stride split.
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        if !Backend::sha_ni_available() {
            return;
        }
        for len in (0..300).chain([511, 512, 513, 1024, 4095, 4096]) {
            let expect = fast::digest_with_backend(Backend::Portable, &data[..len]);
            assert_eq!(
                fast::digest_with_backend(Backend::ShaNi, &data[..len]),
                expect,
                "one-shot len {len}"
            );
            let mut h = Sha256::with_backend(Backend::ShaNi);
            for chunk in data[..len].chunks(97) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expect, "incremental len {len}");
        }
    }

    #[test]
    fn export_resume_roundtrip() {
        let head = vec![0xabu8; 256];
        let tail = b"the instance page goes here";
        let mut h = Sha256::new();
        h.update(&head);
        let state = h.export_state().expect("aligned");
        assert_eq!(state.byte_len(), 256);

        let mut resumed = Sha256::resume(state);
        resumed.update(tail);

        let mut full = Sha256::new();
        full.update(&head);
        full.update(tail);
        assert_eq!(resumed.finalize(), full.finalize());
    }

    #[test]
    fn export_resume_crosses_backends() {
        // A state exported from one backend must resume bit-exactly on
        // the other — the signer and verifier may run different CPUs.
        if !Backend::sha_ni_available() {
            return;
        }
        let head = vec![0x5au8; 640];
        let tail = vec![0xc3u8; 320];
        let reference = {
            let mut h = Sha256::with_backend(Backend::Portable);
            h.update(&head);
            h.update(&tail);
            h.finalize()
        };
        for (first, second) in
            [(Backend::Portable, Backend::ShaNi), (Backend::ShaNi, Backend::Portable)]
        {
            let mut h = Sha256::with_backend(first);
            h.update(&head);
            let state = h.export_state().expect("aligned");
            let mut resumed = Sha256::resume_with_backend(state, second);
            resumed.update(&tail);
            assert_eq!(resumed.finalize(), reference, "{first:?} -> {second:?}");
        }
    }

    #[test]
    fn export_rejects_unaligned() {
        let mut h = Sha256::new();
        h.update(b"odd");
        assert_eq!(h.export_state(), Err(CryptoError::UnalignedHashState));
    }

    #[test]
    fn state_encode_decode_roundtrip() {
        let mut h = Sha256::new();
        h.update(&[7u8; 640]);
        let state = h.export_state().expect("aligned");
        let encoded = state.encode();
        let decoded = Sha256State::decode(&encoded).expect("decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn state_decode_rejects_bad_input() {
        assert!(Sha256State::decode(&[0u8; 39]).is_err());
        let mut enc = [0u8; STATE_LEN];
        enc[39] = 1; // byte_len = 1, not block aligned
        assert_eq!(Sha256State::decode(&enc), Err(CryptoError::UnalignedHashState));
    }

    #[test]
    fn digest_hex_roundtrip_and_display() {
        let d = digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).expect("parses"), d);
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn to_hex_covers_all_nibbles() {
        let d = Digest(core::array::from_fn(|i| {
            [0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xefu8][i % 8].rotate_left((i / 8) as u32)
        }));
        let via_format: String = d.0.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(d.to_hex(), via_format);
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert!(Digest::from_hex("xyz").is_err());
        assert!(Digest::from_hex(&"g".repeat(64)).is_err());
    }

    #[test]
    fn digest_parts_equals_concatenation() {
        let d1 = digest_parts(&[b"ab", b"cd", b""]);
        let d2 = digest(b"abcd");
        assert_eq!(d1, d2);
    }

    #[test]
    fn resume_from_zero_state_equals_fresh() {
        let state = Sha256State::from_parts(IV, 0).expect("aligned");
        let mut resumed = Sha256::resume(state);
        resumed.update(b"abc");
        assert_eq!(resumed.finalize(), digest(b"abc"));
    }

    #[test]
    fn compress_blocks_rejects_partial_blocks() {
        let mut h = IV;
        let result = std::panic::catch_unwind(move || {
            compress_blocks(&mut h, &[0u8; 65]);
        });
        assert!(result.is_err());
    }
}
