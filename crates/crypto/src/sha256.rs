//! SHA-256 — one-shot and *interruptible* implementations.
//!
//! SGX computes `MRENCLAVE` as a SHA-256 over the enclave-construction
//! operations (§2.2.1 of the paper). Because SHA-256 is a
//! Merkle–Damgård construction, after every 64-byte block the entire
//! computation is captured by 256 bits of internal state plus a 64-bit
//! byte counter. SinClave exploits this: the signer *interrupts* the
//! measurement just before finalization and publishes that intermediate
//! state as the **base enclave hash**; the verifier later *resumes* it,
//! appends the measurement operations of the instance page, and
//! finalizes to predict the singleton's unique `MRENCLAVE` (§4.4).
//!
//! Two implementations are provided, mirroring Fig. 6 of the paper:
//!
//! * [`fast::digest`] — an aggressively unrolled one-shot hash, the
//!   stand-in for the paper's Ring/OpenSSL baseline.
//! * [`Sha256`] — the interruptible hasher with [`Sha256::export_state`]
//!   and [`Sha256::resume`], the stand-in for the paper's
//!   "SinClave" / "SinClave-BaseHash" variants.
//!
//! Both produce identical digests (verified against FIPS 180-4 test
//! vectors and against each other by property tests).

use crate::error::CryptoError;
use std::fmt;

/// SHA-256 block size in bytes.
pub const BLOCK_LEN: usize = 64;
/// SHA-256 digest size in bytes.
pub const DIGEST_LEN: usize = 32;

/// FIPS 180-4 initial hash value.
pub(crate) const IV: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// FIPS 180-4 round constants.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// Displayed as lowercase hex. Comparison via `==` is *not*
/// constant-time; use [`crate::ct::eq`] when comparing secret MACs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Returns the digest as an owned byte array.
    #[must_use]
    pub fn to_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Renders the digest as lowercase hex.
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the string is not
    /// exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return Err(CryptoError::InvalidLength { context: "hex digest" });
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(CryptoError::InvalidLength { context: "hex digest" })?;
            let lo = hex_val(chunk[1]).ok_or(CryptoError::InvalidLength { context: "hex digest" })?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Digest(out))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Exportable intermediate SHA-256 state: the **base enclave hash**.
///
/// Captures the Merkle–Damgård chaining value after a whole number of
/// 64-byte blocks, together with the number of bytes consumed so far.
/// This is exactly the "256 bit of internal hash state and 64 bit of
/// already compressed input" the paper describes (§2.2.1) and is what
/// the SinClave signer publishes instead of a finalized `MRENCLAVE`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sha256State {
    h: [u32; 8],
    byte_len: u64,
}

/// Serialized size of a [`Sha256State`] in bytes.
pub const STATE_LEN: usize = 40;

impl Sha256State {
    /// Creates a state from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnalignedHashState`] if `byte_len` is not
    /// a multiple of the 64-byte block size — such a state could never
    /// have been exported from a block-aligned computation.
    pub fn from_parts(h: [u32; 8], byte_len: u64) -> Result<Self, CryptoError> {
        if !byte_len.is_multiple_of(BLOCK_LEN as u64) {
            return Err(CryptoError::UnalignedHashState);
        }
        Ok(Sha256State { h, byte_len })
    }

    /// The chaining value (H1..H8).
    #[must_use]
    pub fn chaining_value(&self) -> [u32; 8] {
        self.h
    }

    /// Number of message bytes already compressed into this state.
    #[must_use]
    pub fn byte_len(&self) -> u64 {
        self.byte_len
    }

    /// Serializes the state to its 40-byte wire encoding
    /// (big-endian H1..H8 followed by the big-endian byte counter).
    #[must_use]
    pub fn encode(&self) -> [u8; STATE_LEN] {
        let mut out = [0u8; STATE_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out[32..40].copy_from_slice(&self.byte_len.to_be_bytes());
        out
    }

    /// Parses a state from its 40-byte wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for a wrong-size buffer
    /// and [`CryptoError::UnalignedHashState`] for a byte counter that
    /// is not block-aligned.
    pub fn decode(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != STATE_LEN {
            return Err(CryptoError::InvalidLength { context: "sha256 state" });
        }
        let mut h = [0u32; 8];
        for (i, word) in h.iter_mut().enumerate() {
            *word = u32::from_be_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let byte_len = u64::from_be_bytes(bytes[32..40].try_into().expect("8 bytes"));
        Sha256State::from_parts(h, byte_len)
    }
}

/// Interruptible, resumable SHA-256 hasher.
///
/// This is the implementation the paper calls "SinClave" in Fig. 6: a
/// plain, portable Rust compression loop whose state can be exported at
/// any 64-byte boundary and resumed later — possibly by a different
/// party on a different machine.
///
/// # Example
///
/// ```
/// use sinclave_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Sha256 {
    /// Creates a hasher initialized with the FIPS 180-4 IV.
    #[must_use]
    pub fn new() -> Self {
        Sha256 { h: IV, buf: [0u8; BLOCK_LEN], buf_len: 0, total_len: 0 }
    }

    /// Resumes a computation from an exported intermediate state.
    ///
    /// The resumed hasher behaves exactly as if it had consumed
    /// `state.byte_len()` bytes already: subsequent [`update`] calls
    /// append to the original message and [`finalize`] produces the
    /// digest of the full concatenated message.
    ///
    /// [`update`]: Sha256::update
    /// [`finalize`]: Sha256::finalize
    #[must_use]
    pub fn resume(state: Sha256State) -> Self {
        Sha256 {
            h: state.h,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: state.byte_len,
        }
    }

    /// Total number of message bytes consumed so far.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Absorbs `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            .expect("sha256 message length overflow");

        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress_portable(&mut self.h, &block);
                self.buf_len = 0;
            }
        }

        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            compress_portable(&mut self.h, block.try_into().expect("exact chunk"));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Exports the intermediate state — the *base enclave hash*.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnalignedHashState`] if the number of
    /// consumed bytes is not a multiple of 64: the Merkle–Damgård state
    /// alone cannot represent a partially filled block. SGX measurement
    /// operations are always multiples of 64 bytes, so the SinClave
    /// signer never hits this case.
    pub fn export_state(&self) -> Result<Sha256State, CryptoError> {
        if self.buf_len != 0 {
            return Err(CryptoError::UnalignedHashState);
        }
        Sha256State::from_parts(self.h, self.total_len)
    }

    /// Finalizes the hash, consuming the hasher.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Standard padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        let mut last = [0u8; 8];
        last.copy_from_slice(&bit_len.to_be_bytes());
        self.buf[56..64].copy_from_slice(&last);
        let block = self.buf;
        compress_portable(&mut self.h, &block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.push_raw(0x80);
    }

    fn update_zero_byte(&mut self) {
        self.push_raw(0);
    }

    /// Pushes a padding byte without advancing the message length.
    fn push_raw(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == BLOCK_LEN {
            let block = self.buf;
            compress_portable(&mut self.h, &block);
            self.buf_len = 0;
        }
    }
}

/// Hashes `data` with the interruptible implementation.
///
/// Convenience wrapper over [`Sha256`].
#[must_use]
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices.
#[must_use]
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Portable compression function: one 64-byte block.
fn compress_portable(h: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

pub mod fast {
    //! One-shot SHA-256 tuned for throughput — the Fig. 6 baseline.
    //!
    //! The paper compares its interruptible implementation against the
    //! `ring` crate (hand-optimized assembly, ~405 MB/s on their Xeon).
    //! No assembly here, but the same *role* is filled by a fully
    //! unrolled compression function with the message schedule kept in
    //! a rolling 16-word window, which the optimizer keeps in
    //! registers. Fig. 6's shape (fast > interruptible) reproduces.

    use super::{Digest, BLOCK_LEN, DIGEST_LEN, IV, K};

    /// Hashes `data` in one shot with the unrolled implementation.
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = IV;
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            compress_unrolled(&mut h, block.try_into().expect("exact chunk"));
        }

        // Final padded block(s).
        let rest = chunks.remainder();
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut tail = [0u8; 2 * BLOCK_LEN];
        tail[..rest.len()].copy_from_slice(rest);
        tail[rest.len()] = 0x80;
        if rest.len() < 56 {
            tail[56..64].copy_from_slice(&bit_len.to_be_bytes());
            compress_unrolled(&mut h, tail[..64].try_into().expect("64 bytes"));
        } else {
            tail[120..128].copy_from_slice(&bit_len.to_be_bytes());
            compress_unrolled(&mut h, tail[..64].try_into().expect("64 bytes"));
            compress_unrolled(&mut h, tail[64..128].try_into().expect("64 bytes"));
        }

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $k:expr, $w:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add($k)
                .wrapping_add($w);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }

    #[inline(always)]
    fn schedule(w: &mut [u32; 16], i: usize) -> u32 {
        let w15 = w[(i + 1) & 15];
        let w2 = w[(i + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        w[i & 15] = w[i & 15]
            .wrapping_add(s0)
            .wrapping_add(w[(i + 9) & 15])
            .wrapping_add(s1);
        w[i & 15]
    }

    #[inline(always)]
    fn compress_unrolled(h: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 16];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
        // Rounds 0..16 use the raw message words, 16..64 the rolling
        // schedule. Groups of 8 are unrolled with rotated registers.
        let mut i = 0;
        while i < 64 {
            let w0 = if i < 16 { w[i & 15] } else { schedule(&mut w, i) };
            round!(a, b, c, d, e, f, g, hh, K[i], w0);
            let w1 = if i + 1 < 16 { w[(i + 1) & 15] } else { schedule(&mut w, i + 1) };
            round!(hh, a, b, c, d, e, f, g, K[i + 1], w1);
            let w2 = if i + 2 < 16 { w[(i + 2) & 15] } else { schedule(&mut w, i + 2) };
            round!(g, hh, a, b, c, d, e, f, K[i + 2], w2);
            let w3 = if i + 3 < 16 { w[(i + 3) & 15] } else { schedule(&mut w, i + 3) };
            round!(f, g, hh, a, b, c, d, e, K[i + 3], w3);
            let w4 = if i + 4 < 16 { w[(i + 4) & 15] } else { schedule(&mut w, i + 4) };
            round!(e, f, g, hh, a, b, c, d, K[i + 4], w4);
            let w5 = if i + 5 < 16 { w[(i + 5) & 15] } else { schedule(&mut w, i + 5) };
            round!(d, e, f, g, hh, a, b, c, K[i + 5], w5);
            let w6 = if i + 6 < 16 { w[(i + 6) & 15] } else { schedule(&mut w, i + 6) };
            round!(c, d, e, f, g, hh, a, b, K[i + 6], w6);
            let w7 = if i + 7 < 16 { w[(i + 7) & 15] } else { schedule(&mut w, i + 7) };
            round!(b, c, d, e, f, g, hh, a, K[i + 7], w7);
            i += 8;
        }

        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVS reference vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn interruptible_matches_vectors() {
        for (msg, expect) in VECTORS {
            assert_eq!(digest(msg).to_hex(), *expect);
        }
    }

    #[test]
    fn fast_matches_vectors() {
        for (msg, expect) in VECTORS {
            assert_eq!(fast::digest(msg).to_hex(), *expect);
        }
    }

    #[test]
    fn million_a_vector() {
        let msg = vec![b'a'; 1_000_000];
        let expect = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
        assert_eq!(digest(&msg).to_hex(), expect);
        assert_eq!(fast::digest(&msg).to_hex(), expect);
    }

    #[test]
    fn incremental_update_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split {split}");
        }
    }

    #[test]
    fn export_resume_roundtrip() {
        let head = vec![0xabu8; 256];
        let tail = b"the instance page goes here";
        let mut h = Sha256::new();
        h.update(&head);
        let state = h.export_state().expect("aligned");
        assert_eq!(state.byte_len(), 256);

        let mut resumed = Sha256::resume(state);
        resumed.update(tail);

        let mut full = Sha256::new();
        full.update(&head);
        full.update(tail);
        assert_eq!(resumed.finalize(), full.finalize());
    }

    #[test]
    fn export_rejects_unaligned() {
        let mut h = Sha256::new();
        h.update(b"odd");
        assert_eq!(h.export_state(), Err(CryptoError::UnalignedHashState));
    }

    #[test]
    fn state_encode_decode_roundtrip() {
        let mut h = Sha256::new();
        h.update(&[7u8; 640]);
        let state = h.export_state().expect("aligned");
        let encoded = state.encode();
        let decoded = Sha256State::decode(&encoded).expect("decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn state_decode_rejects_bad_input() {
        assert!(Sha256State::decode(&[0u8; 39]).is_err());
        let mut enc = [0u8; STATE_LEN];
        enc[39] = 1; // byte_len = 1, not block aligned
        assert_eq!(Sha256State::decode(&enc), Err(CryptoError::UnalignedHashState));
    }

    #[test]
    fn digest_hex_roundtrip_and_display() {
        let d = digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).expect("parses"), d);
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn from_hex_rejects_garbage() {
        assert!(Digest::from_hex("xyz").is_err());
        assert!(Digest::from_hex(&"g".repeat(64)).is_err());
    }

    #[test]
    fn digest_parts_equals_concatenation() {
        let d1 = digest_parts(&[b"ab", b"cd", b""]);
        let d2 = digest(b"abcd");
        assert_eq!(d1, d2);
    }

    #[test]
    fn resume_from_zero_state_equals_fresh() {
        let state = Sha256State::from_parts(IV, 0).expect("aligned");
        let mut resumed = Sha256::resume(state);
        resumed.update(b"abc");
        assert_eq!(resumed.finalize(), digest(b"abc"));
    }
}
