//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented over 26-bit limbs (five `u32` words widened through
//! `u64` products), the standard portable approach that avoids needing
//! 128-bit division.

/// Poly1305 key size in bytes (16-byte `r` and 16-byte `s` halves).
pub const KEY_LEN: usize = 32;
/// Poly1305 tag size in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 computation.
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    acc: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl std::fmt::Debug for Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poly1305").field("buffered", &self.buf_len).finish()
    }
}

impl Poly1305 {
    /// Creates an authenticator from a one-time 32-byte key.
    ///
    /// The first half is clamped per the RFC; the second half is the
    /// final addend.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per the RFC, then split the 128-bit LE value into
        // 26-bit limbs.
        let mut r_bytes = [0u8; 16];
        r_bytes.copy_from_slice(&key[..16]);
        r_bytes[3] &= 15;
        r_bytes[7] &= 15;
        r_bytes[11] &= 15;
        r_bytes[15] &= 15;
        r_bytes[4] &= 252;
        r_bytes[8] &= 252;
        r_bytes[12] &= 252;
        let r = u128::from_le_bytes(r_bytes);
        let r = [
            (r & 0x3ff_ffff) as u32,
            ((r >> 26) & 0x3ff_ffff) as u32,
            ((r >> 52) & 0x3ff_ffff) as u32,
            ((r >> 78) & 0x3ff_ffff) as u32,
            ((r >> 104) & 0x3ff_ffff) as u32,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().expect("4")),
            u32::from_le_bytes(key[20..24].try_into().expect("4")),
            u32::from_le_bytes(key[24..28].try_into().expect("4")),
            u32::from_le_bytes(key[28..32].try_into().expect("4")),
        ];
        Poly1305 { r, s, acc: [0; 5], buf: [0; 16], buf_len: 0 }
    }

    /// Absorbs message data.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let need = 16 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, 1);
                self.buf_len = 0;
            }
        }
        let mut chunks = data.chunks_exact(16);
        for block in &mut chunks {
            self.process_block(block.try_into().expect("16 bytes"), 1);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Processes one block; `hibit` is 1 for full blocks, and the
    /// padded final partial block carries its own high bit in the data.
    fn process_block(&mut self, block: &[u8; 16], hibit: u32) {
        let m = u128::from_le_bytes(*block);
        let m = [
            (m & 0x3ff_ffff) as u32,
            ((m >> 26) & 0x3ff_ffff) as u32,
            ((m >> 52) & 0x3ff_ffff) as u32,
            ((m >> 78) & 0x3ff_ffff) as u32,
            ((m >> 104) & 0x3ff_ffff) as u32 | (hibit << 24),
        ];
        for (acc, m) in self.acc.iter_mut().zip(m) {
            *acc = acc.wrapping_add(m);
        }
        self.mul_r();
    }

    /// acc = (acc * r) mod 2^130 - 5, keeping limbs below 2^26ish.
    fn mul_r(&mut self) {
        let [h0, h1, h2, h3, h4] = self.acc.map(u64::from);
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= 0x3ff_ffff;
        d1 += c;
        c = d1 >> 26;
        d1 &= 0x3ff_ffff;
        d2 += c;
        c = d2 >> 26;
        d2 &= 0x3ff_ffff;
        d3 += c;
        c = d3 >> 26;
        d3 &= 0x3ff_ffff;
        d4 += c;
        c = d4 >> 26;
        d4 &= 0x3ff_ffff;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= 0x3ff_ffff;
        d1 += c;

        self.acc = [d0 as u32, d1 as u32, d2 as u32, d3 as u32, d4 as u32];
    }

    /// Finalizes and returns the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block with 0x01 then zeros; the
            // high bit then comes from the data, not the hibit flag.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 0x01;
            self.process_block(&block, 0);
        }

        // Full carry.
        let mut h = self.acc.map(u64::from);
        let mut c;
        c = h[1] >> 26;
        h[1] &= 0x3ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x3ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x3ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x3ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ff_ffff;
        h[1] += c;

        // Compute h + -p = h - (2^130 - 5) and select.
        let mut g = [0u64; 5];
        c = 5;
        for i in 0..5 {
            let t = h[i] + c;
            c = t >> 26;
            g[i] = t & 0x3ff_ffff;
        }
        // g4 has bit 26 set iff h >= p.
        let mask = (c ^ 1).wrapping_sub(1); // c==1 -> all ones
        for i in 0..5 {
            h[i] = (g[i] & mask) | (h[i] & !mask);
        }

        // Serialize to 128 bits and add s mod 2^128.
        let acc = h[0] as u128
            | (h[1] as u128) << 26
            | (h[2] as u128) << 52
            | (h[3] as u128) << 78
            | (h[4] as u128) << 104;
        let s = self.s[0] as u128
            | (self.s[1] as u128) << 32
            | (self.s[2] as u128) << 64
            | (self.s[3] as u128) << 96;
        let tag = acc.wrapping_add(s);
        tag.to_le_bytes()
    }
}

/// One-shot Poly1305 tag.
#[must_use]
pub fn tag(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(message);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&[
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8,
        ]);
        key[16..].copy_from_slice(&[
            0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49,
            0xf5, 0x1b,
        ]);
        let t = tag(&key, b"Cryptographic Forum Research Group");
        assert_eq!(
            t,
            [
                0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
                0x27, 0xa9
            ]
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = [0x42u8; 32];
        let msg: Vec<u8> = (0..100).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 99, 100] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), tag(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn empty_message() {
        let key = [0x11u8; 32];
        // The tag of the empty message is just s.
        assert_eq!(tag(&key, b""), [0x11u8; 16]);
    }

    #[test]
    fn different_messages_different_tags() {
        let key = [0x77u8; 32];
        assert_ne!(tag(&key, b"a"), tag(&key, b"b"));
        assert_ne!(tag(&key, b"a"), tag(&key, b"a\0"));
    }

    #[test]
    fn high_value_blocks_reduced_correctly() {
        // All-ones blocks stress the modular reduction.
        let key = {
            let mut k = [0xffu8; 32];
            k[15] = 0x0f;
            k
        };
        let msg = [0xffu8; 64];
        let t1 = tag(&key, &msg);
        let t2 = tag(&key, &msg);
        assert_eq!(t1, t2);
    }
}
