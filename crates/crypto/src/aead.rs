//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! The single authenticated-encryption primitive of the reproduction:
//! protects filesystem chunks ([`sinclave_fs`](../../sinclave_fs)),
//! the CAS's encrypted database, and secure-channel records.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::ct;
use crate::error::CryptoError;
use crate::poly1305::{Poly1305, TAG_LEN};

/// An AEAD key.
///
/// Wraps the raw 32 bytes so keys cannot be confused with nonces or
/// plain buffers, and so `Debug` never prints key material.
#[derive(Clone, PartialEq, Eq)]
pub struct AeadKey([u8; KEY_LEN]);

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AeadKey(..)")
    }
}

impl AeadKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn new(bytes: [u8; KEY_LEN]) -> Self {
        AeadKey(bytes)
    }

    /// Derives a key from input keying material and a context label.
    #[must_use]
    pub fn derive(ikm: &[u8], context: &[u8]) -> Self {
        AeadKey(crate::hkdf::derive(b"sinclave-aead", ikm, context))
    }

    /// Returns the raw bytes (needed to persist volume keys).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

/// A 12-byte AEAD nonce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nonce(pub [u8; NONCE_LEN]);

impl Nonce {
    /// Builds a nonce from a 32-bit domain tag and a 64-bit counter —
    /// the scheme used by the filesystem (chunk index) and channels
    /// (record counter). Never reuse a (key, domain, counter) triple.
    #[must_use]
    pub fn from_parts(domain: u32, counter: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[..4].copy_from_slice(&domain.to_be_bytes());
        n[4..].copy_from_slice(&counter.to_be_bytes());
        Nonce(n)
    }
}

/// Encrypts `plaintext` and authenticates it together with `aad`.
///
/// Returns `ciphertext || tag` (ciphertext length + 16).
#[must_use]
pub fn seal(key: &AeadKey, nonce: Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha20::xor_in_place(&key.0, &nonce.0, 1, &mut out);
    let tag = compute_tag(key, nonce, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts and authenticates a `ciphertext || tag` buffer.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if the buffer is shorter than
/// a tag, and [`CryptoError::AeadTagMismatch`] if authentication fails
/// (in which case no plaintext is released).
pub fn open(
    key: &AeadKey,
    nonce: Nonce,
    aad: &[u8],
    ciphertext_and_tag: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext_and_tag.len() < TAG_LEN {
        return Err(CryptoError::InvalidLength { context: "aead ciphertext" });
    }
    let (ciphertext, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
    let expect = compute_tag(key, nonce, aad, ciphertext);
    if !ct::eq(&expect, tag) {
        return Err(CryptoError::AeadTagMismatch);
    }
    let mut out = ciphertext.to_vec();
    chacha20::xor_in_place(&key.0, &nonce.0, 1, &mut out);
    Ok(out)
}

/// RFC 8439 AEAD tag: Poly1305 over `aad || pad || ct || pad || lens`.
fn compute_tag(key: &AeadKey, nonce: Nonce, aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let otk = chacha20::poly1305_key(&key.0, &nonce.0);
    let mut mac = Poly1305::new(&otk);
    mac.update(aad);
    mac.update(&zero_pad(aad.len()));
    mac.update(ciphertext);
    mac.update(&zero_pad(ciphertext.len()));
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lens[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lens);
    mac.finalize()
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - len % 16) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = 0x80 | i as u8;
        }
        AeadKey::new(k)
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let key = AeadKey::new(k);
        let nonce = Nonce([0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47]);
        let aad = [0x50u8, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, nonce, &aad, pt);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(&ct[..8], &[0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb]);
        assert_eq!(
            tag,
            &[
                0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0, 0x60,
                0x06, 0x91
            ]
        );
        assert_eq!(open(&key, nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = key();
        for size in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..size).map(|i| i as u8).collect();
            let nonce = Nonce::from_parts(1, size as u64);
            let sealed = seal(&key, nonce, b"aad", &pt);
            assert_eq!(sealed.len(), size + TAG_LEN);
            assert_eq!(open(&key, nonce, b"aad", &sealed).unwrap(), pt, "size {size}");
        }
    }

    #[test]
    fn rejects_wrong_aad() {
        let key = key();
        let nonce = Nonce::from_parts(0, 0);
        let sealed = seal(&key, nonce, b"right", b"secret");
        assert_eq!(open(&key, nonce, b"wrong", &sealed), Err(CryptoError::AeadTagMismatch));
    }

    #[test]
    fn rejects_wrong_nonce_or_key() {
        let key = key();
        let sealed = seal(&key, Nonce::from_parts(0, 1), b"", b"secret");
        assert!(open(&key, Nonce::from_parts(0, 2), b"", &sealed).is_err());
        let other = AeadKey::derive(b"other", b"ctx");
        assert!(open(&other, Nonce::from_parts(0, 1), b"", &sealed).is_err());
    }

    #[test]
    fn rejects_every_single_byte_flip() {
        let key = key();
        let nonce = Nonce::from_parts(7, 7);
        let sealed = seal(&key, nonce, b"aad", b"integrity matters");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(open(&key, nonce, b"aad", &bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn rejects_truncation() {
        let key = key();
        let nonce = Nonce::from_parts(0, 0);
        let sealed = seal(&key, nonce, b"", b"data");
        assert!(open(&key, nonce, b"", &sealed[..sealed.len() - 1]).is_err());
        assert_eq!(
            open(&key, nonce, b"", &sealed[..10]),
            Err(CryptoError::InvalidLength { context: "aead ciphertext" })
        );
    }

    #[test]
    fn derive_is_deterministic_and_context_separated() {
        let a = AeadKey::derive(b"ikm", b"ctx1");
        let b = AeadKey::derive(b"ikm", b"ctx1");
        let c = AeadKey::derive(b"ikm", b"ctx2");
        assert_eq!(a, b);
        assert_ne!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn nonce_from_parts_layout() {
        let n = Nonce::from_parts(0x01020304, 0x05060708090a0b0c);
        assert_eq!(n.0, [1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c]);
    }

    #[test]
    fn debug_hides_key() {
        assert_eq!(format!("{:?}", key()), "AeadKey(..)");
    }
}
