//! Error type shared by all cryptographic operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations.
///
/// Variants deliberately carry little detail: error messages from
/// cryptographic code must not leak secret-dependent information.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed to verify.
    SignatureInvalid,
    /// An AEAD tag did not authenticate the ciphertext.
    AeadTagMismatch,
    /// An input had an invalid length for the requested operation.
    InvalidLength {
        /// What was being parsed or processed.
        context: &'static str,
    },
    /// A key was malformed or did not satisfy the algorithm's invariants.
    InvalidKey {
        /// What was wrong, in non-secret terms.
        context: &'static str,
    },
    /// The message is too large for the algorithm (e.g. RSA modulus).
    MessageTooLarge,
    /// Prime generation failed to find a prime within the attempt budget.
    PrimeGenerationFailed,
    /// An interruptible hash state was exported at a non-block boundary.
    UnalignedHashState,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::SignatureInvalid => write!(f, "signature verification failed"),
            CryptoError::AeadTagMismatch => write!(f, "aead authentication tag mismatch"),
            CryptoError::InvalidLength { context } => {
                write!(f, "invalid length for {context}")
            }
            CryptoError::InvalidKey { context } => write!(f, "invalid key: {context}"),
            CryptoError::MessageTooLarge => write!(f, "message too large for algorithm"),
            CryptoError::PrimeGenerationFailed => {
                write!(f, "prime generation exhausted its attempt budget")
            }
            CryptoError::UnalignedHashState => {
                write!(f, "hash state export requires a 64-byte block boundary")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants = [
            CryptoError::SignatureInvalid,
            CryptoError::AeadTagMismatch,
            CryptoError::InvalidLength { context: "nonce" },
            CryptoError::InvalidKey { context: "modulus too small" },
            CryptoError::MessageTooLarge,
            CryptoError::PrimeGenerationFailed,
            CryptoError::UnalignedHashState,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
