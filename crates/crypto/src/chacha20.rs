//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used (with [`crate::poly1305`]) as the AEAD protecting the encrypted
//! filesystem, the encrypted CAS database and the secure channels —
//! everywhere the paper's SCONE stack uses AES-GCM, which is not
//! implementable here without hardware support or an AES dependency.

/// ChaCha20 key size in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce size in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Computes one 64-byte keystream block.
#[must_use]
fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// XORs the ChaCha20 keystream into `data` in place, starting at block
/// `initial_counter`.
///
/// Encryption and decryption are the same operation.
///
/// # Panics
///
/// Panics if the data is long enough to overflow the 32-bit block
/// counter (> 256 GiB).
pub fn xor_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        (initial_counter as u64) + blocks_needed <= u64::from(u32::MAX) + 1,
        "chacha20 counter overflow"
    );
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Generates the Poly1305 one-time key for an AEAD invocation
/// (RFC 8439 §2.6): the first 32 bytes of keystream block zero.
#[must_use]
pub fn poly1305_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let ks = block(key, 0, nonce);
    let mut out = [0u8; 32];
    out.copy_from_slice(&ks[..32]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key = rfc_key();
        let nonce = [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let out = block(&key, 1, &nonce);
        // First words of the §2.3.2 keystream; the full block function
        // is additionally covered end-to-end by the §2.8.2 AEAD vector
        // in `aead::tests`, which authenticates all 64 bytes per block.
        let expect_start = [0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&out[..8], &expect_start);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key = rfc_key();
        let nonce = [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        xor_in_place(&key, &nonce, 1, &mut data);
        assert_eq!(
            &data[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
    }

    #[test]
    fn xor_roundtrips() {
        let key = rfc_key();
        let nonce = [7u8; NONCE_LEN];
        let original: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        xor_in_place(&key, &nonce, 5, &mut data);
        assert_ne!(data, original);
        xor_in_place(&key, &nonce, 5, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = rfc_key();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_in_place(&key, &[1u8; NONCE_LEN], 0, &mut a);
        xor_in_place(&key, &[2u8; NONCE_LEN], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn poly_key_is_prefix_of_block_zero() {
        let key = rfc_key();
        let nonce = [3u8; NONCE_LEN];
        let pk = poly1305_key(&key, &nonce);
        let blk = block(&key, 0, &nonce);
        assert_eq!(&pk[..], &blk[..32]);
    }

    #[test]
    fn counter_offset_is_block_granular() {
        let key = rfc_key();
        let nonce = [9u8; NONCE_LEN];
        // Encrypting from counter 1 equals skipping the first block of
        // a counter-0 stream.
        let mut long = vec![0u8; 128];
        xor_in_place(&key, &nonce, 0, &mut long);
        let mut short = vec![0u8; 64];
        xor_in_place(&key, &nonce, 1, &mut short);
        assert_eq!(&long[64..], &short[..]);
    }
}
