//! Probabilistic primality testing and prime generation for RSA keys.

use crate::bignum::Uint;
use crate::error::CryptoError;
use crate::rng;
use rand::RngCore;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349,
];

/// Number of Miller–Rabin rounds: error probability ≤ 4^-32 per candidate.
const MILLER_RABIN_ROUNDS: usize = 32;

/// Tests whether `n` is (probably) prime.
///
/// Deterministically correct for all `n` divisible by a tracked small
/// prime; otherwise Miller–Rabin with [`MILLER_RABIN_ROUNDS`] random
/// bases (error probability at most `4^-32`).
pub fn is_prime<R: RngCore + ?Sized>(rng: &mut R, n: &Uint) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in SMALL_PRIMES {
        let p_big = Uint::from_u64(p);
        if n == &p_big {
            return true;
        }
        if n.rem_ref(&p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(rng, n, MILLER_RABIN_ROUNDS)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
fn miller_rabin<R: RngCore + ?Sized>(rng: &mut R, n: &Uint, rounds: usize) -> bool {
    debug_assert!(n.is_odd());
    let one = Uint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n > 1");
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr(s);

    let three = Uint::from_u64(3);
    let bound = n.checked_sub(&three).expect("n > 3");
    let mont = crate::bignum::Montgomery::new(n).expect("odd modulus > 3");

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = rng::uint_below(rng, &bound).add_ref(&Uint::from_u64(2));
        let mut x = mont.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = mont.mul(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// The two top bits are forced to one (standard RSA practice so the
/// product of two such primes has exactly `2 * bits` bits), and the
/// candidate is made odd before testing.
///
/// # Errors
///
/// Returns [`CryptoError::PrimeGenerationFailed`] if no prime is found
/// within a generous attempt budget (practically unreachable).
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn generate_prime<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> Result<Uint, CryptoError> {
    assert!(bits >= 8, "prime size too small for RSA use");
    // Prime density ~ 1/(bits * ln 2); budget is vastly above expectation.
    let budget = bits * 64;
    for _ in 0..budget {
        let mut candidate = rng::uint_with_bits(rng, bits);
        candidate.set_bit(bits - 2);
        candidate.set_bit(0);
        if is_prime(rng, &candidate) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classifies_small_numbers() {
        let mut rng = StdRng::seed_from_u64(7);
        let primes = [2u64, 3, 5, 7, 11, 97, 127, 251, 257, 65_537, 1_000_000_007];
        for p in primes {
            assert!(is_prime(&mut rng, &Uint::from_u64(p)), "{p} is prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 91, 100, 65_535, 1_000_000_008];
        for c in composites {
            assert!(!is_prime(&mut rng, &Uint::from_u64(c)), "{c} is composite");
        }
    }

    #[test]
    fn rejects_carmichael_numbers() {
        let mut rng = StdRng::seed_from_u64(8);
        // Classic Fermat pseudoprimes that Miller–Rabin must reject.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825_265] {
            assert!(!is_prime(&mut rng, &Uint::from_u64(c)), "{c} is Carmichael");
        }
    }

    #[test]
    fn recognizes_known_large_primes() {
        let mut rng = StdRng::seed_from_u64(9);
        // 2^89 - 1 and 2^127 - 1 are Mersenne primes.
        for exp in [89usize, 127] {
            let p = Uint::one().shl(exp).checked_sub(&Uint::one()).unwrap();
            assert!(is_prime(&mut rng, &p), "2^{exp} - 1 is prime");
        }
        // 2^67 - 1 is famously composite (193707721 × 761838257287).
        let c = Uint::one().shl(67).checked_sub(&Uint::one()).unwrap();
        assert!(!is_prime(&mut rng, &c));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = StdRng::seed_from_u64(10);
        for bits in [64usize, 128, 256] {
            let p = generate_prime(&mut rng, bits).expect("prime found");
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(p.bit(bits - 2), "second-highest bit forced");
            assert!(is_prime(&mut rng, &p));
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = generate_prime(&mut rng, 128).unwrap();
        let b = generate_prime(&mut rng, 128).unwrap();
        assert_ne!(a, b);
    }
}
