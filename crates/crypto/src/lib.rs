//! From-scratch cryptographic substrate for the SinClave reproduction.
//!
//! The paper's central primitive is an *interruptible* SHA-256
//! implementation whose internal Merkle–Damgård state can be exported
//! mid-computation (the "base enclave hash", §4.4 of the paper) and
//! later resumed and finalized by a different party (the verifier). This
//! crate provides that primitive ([`sha256::Sha256`],
//! [`sha256::Sha256State`]) together with everything else the
//! reproduction needs and that is not available as an allowed
//! dependency:
//!
//! * [`sha256`] — one-shot "fast" SHA-256 (stand-in for the paper's
//!   Ring/OpenSSL baseline in Fig. 6) and the interruptible hasher.
//! * [`hmac`] / [`hkdf`] — message authentication and key derivation,
//!   used for the simulated SGX report MAC and sealing-key derivation.
//! * [`bignum`] — arbitrary-precision unsigned integers with Montgomery
//!   exponentiation, the foundation for RSA.
//! * [`rsa`] — RSA-3072 PKCS#1 v1.5 signatures as used by SGX
//!   SigStructs and by SinClave's on-demand SigStruct creation.
//! * [`chacha20`] / [`poly1305`] / [`aead`] — the authenticated cipher
//!   used by the encrypted filesystem and the secure channels.
//! * [`ct`] — constant-time comparison helpers.
//!
//! # Example
//!
//! ```
//! use sinclave_crypto::sha256::{self, Sha256};
//!
//! // One-shot hashing.
//! let digest = sha256::digest(b"hello world");
//!
//! // Interruptible hashing: export the state at a block boundary,
//! // resume elsewhere, and obtain the same digest.
//! let mut h = Sha256::new();
//! h.update(&[0u8; 64]);
//! let state = h.export_state().expect("block aligned");
//! let mut resumed = Sha256::resume(state);
//! resumed.update(b"tail");
//! let mut reference = Sha256::new();
//! reference.update(&[0u8; 64]);
//! reference.update(b"tail");
//! assert_eq!(resumed.finalize(), reference.finalize());
//! assert_ne!(digest.as_bytes(), &[0u8; 32]);
//! ```

// `deny` rather than `forbid`: the SHA-NI compression core in
// `sha256::shani` is the one allowed `unsafe` island (CPU intrinsics),
// gated behind runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha256;
pub mod shard;

pub use error::CryptoError;
