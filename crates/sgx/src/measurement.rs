//! The `MRENCLAVE` measurement computation.
//!
//! Every enclave-construction operation contributes 64-byte records to
//! a single SHA-256 (Intel SDM Vol. 3D; §2.2.1 of the paper):
//!
//! * `ECREATE` — one record: tag, SSA frame size, enclave size.
//! * `EADD` — one record per page: tag, page offset, SECINFO flags.
//! * `EEXTEND` — five records per 256-byte chunk: a tag+offset header
//!   followed by the four 64-byte data blocks of the chunk.
//!
//! Because every record is a multiple of 64 bytes, the hash is always
//! block-aligned between operations — the property SinClave exploits to
//! interrupt the computation and export a [`Sha256State`] base hash
//! that a verifier can later extend with an instance page and finalize
//! (§4.4).
//!
//! The same invariant powers the measurement fast path: each `EEXTEND`
//! is staged as one contiguous 320-byte record run (header + four data
//! blocks) and a fully measured page as one 5184-byte run, so the
//! hasher consumes whole multi-block runs in single calls and never
//! touches its partial-block buffer.

use crate::error::SgxError;
use crate::secinfo::SecInfo;
use crate::PAGE_SIZE;
use sinclave_crypto::sha256::{Digest, Sha256, Sha256State};
use std::fmt;

/// Bytes measured by a single `EEXTEND` instruction.
pub const EEXTEND_CHUNK: usize = 256;

/// Bytes one `EEXTEND` contributes to the hash: the tag+offset header
/// record followed by the four 64-byte data blocks of the chunk.
pub const EEXTEND_RECORD_RUN: usize = 64 + EEXTEND_CHUNK;

/// Bytes a fully measured page contributes: the `EADD` record plus 16
/// `EEXTEND` record runs.
pub const PAGE_RECORD_RUN: usize = 64 + (PAGE_SIZE / EEXTEND_CHUNK) * EEXTEND_RECORD_RUN;

const ECREATE_TAG: &[u8; 8] = b"ECREATE\0";
const EADD_TAG: &[u8; 8] = b"EADD\0\0\0\0";
const EEXTEND_TAG: &[u8; 8] = b"EEXTEND\0";

/// A finalized enclave measurement (`MRENCLAVE`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub Digest);

impl Measurement {
    /// The digest bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Lowercase hex rendering.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Measurement({})", &self.to_hex()[..16])
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<Digest> for Measurement {
    fn from(d: Digest) -> Self {
        Measurement(d)
    }
}

/// Incremental `MRENCLAVE` builder mirroring the hardware computation.
///
/// Drives the interruptible SHA-256; [`MeasurementBuilder::export_state`]
/// yields the SinClave base enclave hash.
///
/// # Example
///
/// ```
/// use sinclave_sgx::measurement::MeasurementBuilder;
/// use sinclave_sgx::secinfo::SecInfo;
///
/// let mut m = MeasurementBuilder::ecreate(1, 0x10000);
/// m.add_page(0, &[0u8; 4096], SecInfo::code(), true).unwrap();
/// let mrenclave = m.finalize();
/// assert_eq!(mrenclave.as_bytes().len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct MeasurementBuilder {
    hash: Sha256,
    enclave_size: u64,
    operations: u64,
}

impl MeasurementBuilder {
    /// Starts a measurement with the `ECREATE` record.
    ///
    /// `ssa_frame_size` and `size` are the values stored in the SECS;
    /// `size` bounds page offsets in subsequent [`add_page`] calls.
    ///
    /// [`add_page`]: MeasurementBuilder::add_page
    #[must_use]
    pub fn ecreate(ssa_frame_size: u32, size: u64) -> Self {
        let mut hash = Sha256::new();
        let mut record = [0u8; 64];
        record[..8].copy_from_slice(ECREATE_TAG);
        record[8..12].copy_from_slice(&ssa_frame_size.to_le_bytes());
        record[12..20].copy_from_slice(&size.to_le_bytes());
        hash.update(&record);
        MeasurementBuilder { hash, enclave_size: size, operations: 1 }
    }

    /// Measures the `EADD` of a page at `offset` with the given
    /// SECINFO, then optionally its content via 16 `EEXTEND`s.
    ///
    /// Real SGX leaves content measurement to the starter's discretion
    /// (unmeasured pages are typically zeroed heap); both modes are
    /// needed here (heap pages are added unmeasured in Fig. 8's
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::InvalidPageOffset`] if `offset` is not
    /// page-aligned or lies outside the enclave size declared at
    /// `ECREATE`.
    pub fn add_page(
        &mut self,
        offset: u64,
        content: &[u8; PAGE_SIZE],
        secinfo: SecInfo,
        measure_content: bool,
    ) -> Result<(), SgxError> {
        if !measure_content {
            return self.eadd(offset, secinfo);
        }
        // Stage the page's entire record run — EADD plus 16 EEXTEND
        // runs — contiguously and hand it to the hasher in one call.
        // The builder's hash is always block-aligned between
        // operations, so the whole 5184-byte run streams straight into
        // the multi-block compression core without any buffering.
        self.check_offset(offset)?;
        let mut run = [0u8; PAGE_RECORD_RUN];
        run[..64].copy_from_slice(&eadd_record(offset, secinfo));
        write_eextend_runs(&mut run[64..], offset, content);
        self.hash.update(&run);
        self.operations += 1 + (PAGE_SIZE / EEXTEND_CHUNK) as u64;
        Ok(())
    }

    /// Measures a bare `EADD` record.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::InvalidPageOffset`] for unaligned or
    /// out-of-range offsets.
    pub fn eadd(&mut self, offset: u64, secinfo: SecInfo) -> Result<(), SgxError> {
        self.check_offset(offset)?;
        self.hash.update(&eadd_record(offset, secinfo));
        self.operations += 1;
        Ok(())
    }

    /// Measures one `EEXTEND` over a 256-byte chunk at `offset` as a
    /// single contiguous record run (header plus four data blocks).
    pub fn eextend(&mut self, offset: u64, chunk: &[u8; EEXTEND_CHUNK]) {
        self.hash.update(&eextend_record_run(offset, chunk));
        self.operations += 1;
    }

    /// Measures a whole page's 16 `EEXTEND`s at `offset` as one
    /// contiguous 5120-byte record run handed to the multi-block core
    /// in a single call — the warm-path counterpart of
    /// [`MeasurementBuilder::add_page`] for callers whose `EADD` is
    /// already in the hash (midstate resumption).
    pub fn eextend_page(&mut self, offset: u64, content: &[u8; PAGE_SIZE]) {
        let mut run = [0u8; PAGE_RECORD_RUN - 64];
        write_eextend_runs(&mut run, offset, content);
        self.hash.update(&run);
        self.operations += (PAGE_SIZE / EEXTEND_CHUNK) as u64;
    }

    fn check_offset(&self, offset: u64) -> Result<(), SgxError> {
        if !offset.is_multiple_of(PAGE_SIZE as u64) || offset + PAGE_SIZE as u64 > self.enclave_size
        {
            return Err(SgxError::InvalidPageOffset { offset });
        }
        Ok(())
    }

    /// Number of measured construction operations so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Total bytes hashed so far (always a multiple of 64).
    #[must_use]
    pub fn measured_bytes(&self) -> u64 {
        self.hash.total_len()
    }

    /// Exports the interruptible-hash state: the **base enclave hash**.
    ///
    /// This is what the SinClave signer publishes in place of a final
    /// `MRENCLAVE`, and what the verifier resumes to predict a
    /// singleton's measurement.
    #[must_use]
    pub fn export_state(&self) -> Sha256State {
        self.hash.export_state().expect("measurement records are 64-byte aligned by construction")
    }

    /// Resumes a measurement from an exported base hash.
    ///
    /// `enclave_size` must repeat the size given at `ECREATE` so that
    /// offset validation keeps working.
    #[must_use]
    pub fn resume(state: Sha256State, enclave_size: u64) -> Self {
        MeasurementBuilder { hash: Sha256::resume(state), enclave_size, operations: 0 }
    }

    /// Finalizes the measurement into `MRENCLAVE` (what `EINIT` does).
    #[must_use]
    pub fn finalize(self) -> Measurement {
        Measurement(self.hash.finalize())
    }
}

/// Builds the 64-byte `EADD` measurement record.
fn eadd_record(offset: u64, secinfo: SecInfo) -> [u8; 64] {
    let mut record = [0u8; 64];
    record[..8].copy_from_slice(EADD_TAG);
    record[8..16].copy_from_slice(&offset.to_le_bytes());
    record[16..64].copy_from_slice(&secinfo.measured_bytes());
    record
}

/// Stages a page's 16 `EEXTEND` record runs into `buf` (which must
/// hold [`PAGE_RECORD_RUN`]` - 64` bytes).
fn write_eextend_runs(buf: &mut [u8], offset: u64, content: &[u8; PAGE_SIZE]) {
    for (i, chunk) in content.chunks_exact(EEXTEND_CHUNK).enumerate() {
        let start = i * EEXTEND_RECORD_RUN;
        buf[start..start + EEXTEND_RECORD_RUN].copy_from_slice(&eextend_record_run(
            offset + (i * EEXTEND_CHUNK) as u64,
            chunk.try_into().expect("256-byte chunk"),
        ));
    }
}

/// Builds one `EEXTEND` record run: tag+offset header followed by the
/// chunk's four 64-byte data blocks, contiguous so the hasher consumes
/// it in a single multi-block call.
fn eextend_record_run(offset: u64, chunk: &[u8; EEXTEND_CHUNK]) -> [u8; EEXTEND_RECORD_RUN] {
    let mut run = [0u8; EEXTEND_RECORD_RUN];
    run[..8].copy_from_slice(EEXTEND_TAG);
    run[8..16].copy_from_slice(&offset.to_le_bytes());
    run[64..].copy_from_slice(chunk);
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> [u8; PAGE_SIZE] {
        [fill; PAGE_SIZE]
    }

    #[test]
    fn measurement_is_deterministic() {
        let build = || {
            let mut m = MeasurementBuilder::ecreate(1, 0x20000);
            m.add_page(0, &page(1), SecInfo::code(), true).unwrap();
            m.add_page(0x1000, &page(2), SecInfo::data(), true).unwrap();
            m.finalize()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn any_input_difference_changes_mrenclave() {
        let base = {
            let mut m = MeasurementBuilder::ecreate(1, 0x20000);
            m.add_page(0, &page(1), SecInfo::code(), true).unwrap();
            m.finalize()
        };
        // Different content.
        let mut m = MeasurementBuilder::ecreate(1, 0x20000);
        m.add_page(0, &page(9), SecInfo::code(), true).unwrap();
        assert_ne!(m.finalize(), base);
        // Different permissions.
        let mut m = MeasurementBuilder::ecreate(1, 0x20000);
        m.add_page(0, &page(1), SecInfo::data(), true).unwrap();
        assert_ne!(m.finalize(), base);
        // Different offset.
        let mut m = MeasurementBuilder::ecreate(1, 0x20000);
        m.add_page(0x1000, &page(1), SecInfo::code(), true).unwrap();
        assert_ne!(m.finalize(), base);
        // Different enclave size.
        let mut m = MeasurementBuilder::ecreate(1, 0x40000);
        m.add_page(0, &page(1), SecInfo::code(), true).unwrap();
        assert_ne!(m.finalize(), base);
        // Different SSA frame size.
        let mut m = MeasurementBuilder::ecreate(2, 0x20000);
        m.add_page(0, &page(1), SecInfo::code(), true).unwrap();
        assert_ne!(m.finalize(), base);
    }

    #[test]
    fn unmeasured_page_content_is_invisible() {
        let mk = |fill: u8| {
            let mut m = MeasurementBuilder::ecreate(1, 0x20000);
            m.add_page(0, &page(fill), SecInfo::data(), false).unwrap();
            m.finalize()
        };
        // This is the root cause of the paper's attack: unmeasured
        // content does not influence MRENCLAVE.
        assert_eq!(mk(0), mk(255));
    }

    #[test]
    fn offset_validation() {
        let mut m = MeasurementBuilder::ecreate(1, 0x2000);
        assert!(matches!(
            m.eadd(0x123, SecInfo::code()),
            Err(SgxError::InvalidPageOffset { offset: 0x123 })
        ));
        assert!(m.eadd(0x2000, SecInfo::code()).is_err(), "beyond enclave size");
        assert!(m.eadd(0x1000, SecInfo::code()).is_ok());
    }

    #[test]
    fn operation_and_byte_accounting() {
        let mut m = MeasurementBuilder::ecreate(1, 0x10000);
        assert_eq!(m.operations(), 1);
        assert_eq!(m.measured_bytes(), 64);
        m.add_page(0, &page(0), SecInfo::code(), true).unwrap();
        // 1 EADD + 16 EEXTEND.
        assert_eq!(m.operations(), 1 + 1 + 16);
        // EADD record + 16 * (header + 256 bytes).
        assert_eq!(m.measured_bytes(), 64 + 64 + 16 * (64 + 256));
    }

    #[test]
    fn export_resume_matches_direct_computation() {
        // The SinClave core property at measurement level: interrupt
        // after the base pages, resume elsewhere, add one more page,
        // and land on the same MRENCLAVE as a straight computation.
        let mut base = MeasurementBuilder::ecreate(1, 0x40000);
        base.add_page(0, &page(7), SecInfo::code(), true).unwrap();
        let state = base.export_state();

        let mut resumed = MeasurementBuilder::resume(state, 0x40000);
        resumed.add_page(0x1000, &page(8), SecInfo::read_only(), true).unwrap();

        let mut direct = MeasurementBuilder::ecreate(1, 0x40000);
        direct.add_page(0, &page(7), SecInfo::code(), true).unwrap();
        direct.add_page(0x1000, &page(8), SecInfo::read_only(), true).unwrap();

        assert_eq!(resumed.finalize(), direct.finalize());
    }

    #[test]
    fn batched_page_run_equals_sequential_operations() {
        // The staged 5184-byte page run must hash identically to the
        // operation-by-operation sequence it batches.
        let content = {
            let mut c = page(0);
            for (i, b) in c.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(31).wrapping_add(7);
            }
            c
        };
        let mut batched = MeasurementBuilder::ecreate(1, 0x20000);
        batched.add_page(0x1000, &content, SecInfo::code(), true).unwrap();

        let mut sequential = MeasurementBuilder::ecreate(1, 0x20000);
        sequential.eadd(0x1000, SecInfo::code()).unwrap();
        for (i, chunk) in content.chunks_exact(EEXTEND_CHUNK).enumerate() {
            sequential.eextend(0x1000 + (i * EEXTEND_CHUNK) as u64, chunk.try_into().unwrap());
        }
        assert_eq!(batched.operations(), sequential.operations());
        assert_eq!(batched.measured_bytes(), sequential.measured_bytes());
        assert_eq!(batched.finalize(), sequential.finalize());
    }

    #[test]
    fn eextend_page_equals_chunked_eextends() {
        let content = {
            let mut c = page(0);
            for (i, b) in c.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(13).wrapping_add(5);
            }
            c
        };
        let mut batched = MeasurementBuilder::ecreate(1, 0x20000);
        batched.eextend_page(0x1000, &content);

        let mut chunked = MeasurementBuilder::ecreate(1, 0x20000);
        for (i, chunk) in content.chunks_exact(EEXTEND_CHUNK).enumerate() {
            chunked.eextend(0x1000 + (i * EEXTEND_CHUNK) as u64, chunk.try_into().unwrap());
        }
        assert_eq!(batched.operations(), chunked.operations());
        assert_eq!(batched.finalize(), chunked.finalize());
    }

    #[test]
    fn unmeasured_add_page_equals_bare_eadd() {
        let mut a = MeasurementBuilder::ecreate(1, 0x20000);
        a.add_page(0, &page(3), SecInfo::data(), false).unwrap();
        let mut b = MeasurementBuilder::ecreate(1, 0x20000);
        b.eadd(0, SecInfo::data()).unwrap();
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn eextend_covers_whole_page() {
        // measure_content=true must extend over all 16 chunks: flipping
        // the final byte of the page must change the measurement.
        let mut a = MeasurementBuilder::ecreate(1, 0x10000);
        a.add_page(0, &page(0), SecInfo::code(), true).unwrap();
        let mut content = page(0);
        content[PAGE_SIZE - 1] = 1;
        let mut b = MeasurementBuilder::ecreate(1, 0x10000);
        b.add_page(0, &content, SecInfo::code(), true).unwrap();
        assert_ne!(a.finalize(), b.finalize());
    }
}
