//! Sealing-key derivation (`EGETKEY` with the SEAL selector).
//!
//! Seal keys let an enclave persist secrets across restarts. The
//! derivation policy matters for SinClave: a compromised signer key
//! would expose every `MRSIGNER`-policy seal key of that signer
//! (§4.4, "On-Demand SigStruct Creation", reason (b) why the signer
//! key must never leave the verifier).

use crate::enclave::Enclave;
use sinclave_crypto::aead::AeadKey;

/// Which identity the seal key is bound to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SealPolicy {
    /// Bound to the exact enclave measurement: only bit-identical
    /// enclaves can unseal. Software updates lose access.
    MrEnclave,
    /// Bound to the signer identity and product id: any enclave from
    /// the same signer/product with an equal-or-newer SVN can unseal.
    MrSigner,
}

impl Enclave {
    /// Derives a sealing key under the given policy and label.
    ///
    /// The label provides domain separation between multiple sealed
    /// items of one enclave.
    #[must_use]
    pub fn seal_key(&self, policy: SealPolicy, label: &[u8]) -> AeadKey {
        let identity: Vec<u8> = match policy {
            SealPolicy::MrEnclave => {
                let mut id = b"mrenclave:".to_vec();
                id.extend_from_slice(self.mrenclave().as_bytes());
                id
            }
            SealPolicy::MrSigner => {
                let mut id = b"mrsigner:".to_vec();
                id.extend_from_slice(self.mrsigner().as_bytes());
                id.extend_from_slice(&self.isv_prod_id().to_be_bytes());
                id
            }
        };
        AeadKey::new(self.platform().seal_key(&identity, self.isv_svn(), label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use crate::enclave::EnclaveBuilder;
    use crate::launch::LaunchControl;
    use crate::platform::Platform;
    use crate::secinfo::SecInfo;
    use crate::sigstruct::{SigStruct, SigStructBody};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sinclave_crypto::rsa::RsaPrivateKey;
    use std::sync::Arc;

    fn make_enclave(
        platform: &Arc<Platform>,
        code: &[u8],
        signer: &RsaPrivateKey,
        prod_id: u16,
        svn: u16,
    ) -> Enclave {
        let mut b = EnclaveBuilder::new(platform.clone(), 0x10000, Attributes::production());
        b.add_bytes(0, code, SecInfo::code(), true).unwrap();
        let ss = SigStruct::sign(
            SigStructBody {
                enclave_hash: b.current_measurement(),
                attributes: Attributes::production(),
                attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
                isv_prod_id: prod_id,
                isv_svn: svn,
                date: 20230101,
                vendor: 0,
            },
            signer,
        )
        .unwrap();
        b.einit(&ss, None, &LaunchControl::Flexible).unwrap()
    }

    fn setup(seed: u64) -> (Arc<Platform>, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Arc::new(Platform::new(&mut rng)), RsaPrivateKey::generate(&mut rng, 1024).unwrap())
    }

    #[test]
    fn mrenclave_policy_differs_across_code_versions() {
        let (p, key) = setup(1);
        let v1 = make_enclave(&p, b"code v1", &key, 1, 1);
        let v2 = make_enclave(&p, b"code v2", &key, 1, 1);
        assert_ne!(
            v1.seal_key(SealPolicy::MrEnclave, b"db").as_bytes(),
            v2.seal_key(SealPolicy::MrEnclave, b"db").as_bytes(),
            "update loses MRENCLAVE-sealed data"
        );
        // Same signer and product: MRSIGNER policy survives the update.
        assert_eq!(
            v1.seal_key(SealPolicy::MrSigner, b"db").as_bytes(),
            v2.seal_key(SealPolicy::MrSigner, b"db").as_bytes()
        );
    }

    #[test]
    fn mrsigner_policy_separates_signers_and_products() {
        let (p, key_a) = setup(2);
        let key_b = RsaPrivateKey::generate(&mut StdRng::seed_from_u64(99), 1024).unwrap();
        let a = make_enclave(&p, b"code", &key_a, 1, 1);
        let b = make_enclave(&p, b"code", &key_b, 1, 1);
        assert_ne!(
            a.seal_key(SealPolicy::MrSigner, b"x").as_bytes(),
            b.seal_key(SealPolicy::MrSigner, b"x").as_bytes()
        );
        let a2 = make_enclave(&p, b"code", &key_a, 2, 1);
        assert_ne!(
            a.seal_key(SealPolicy::MrSigner, b"x").as_bytes(),
            a2.seal_key(SealPolicy::MrSigner, b"x").as_bytes()
        );
    }

    #[test]
    fn labels_separate_keys() {
        let (p, key) = setup(3);
        let e = make_enclave(&p, b"code", &key, 1, 1);
        assert_ne!(
            e.seal_key(SealPolicy::MrEnclave, b"a").as_bytes(),
            e.seal_key(SealPolicy::MrEnclave, b"b").as_bytes()
        );
    }

    #[test]
    fn seal_keys_are_platform_bound() {
        let (p1, key) = setup(4);
        let (p2, _) = setup(5);
        let e1 = make_enclave(&p1, b"code", &key, 1, 1);
        let e2 = make_enclave(&p2, b"code", &key, 1, 1);
        assert_eq!(e1.mrenclave(), e2.mrenclave(), "same code, same identity");
        assert_ne!(
            e1.seal_key(SealPolicy::MrEnclave, b"x").as_bytes(),
            e2.seal_key(SealPolicy::MrEnclave, b"x").as_bytes(),
            "sealed data cannot move between platforms"
        );
    }
}
