//! Enclave attributes (the SECS `ATTRIBUTES` field).
//!
//! Attributes determine security-relevant execution properties of an
//! enclave — debug mode, 64-bit mode, extended-state features (§2.2.1).
//! They are measured indirectly: the SigStruct pins them via a mask,
//! and reports/quotes expose them to verifiers, because a debug enclave
//! with the right `MRENCLAVE` is *not* trustworthy.

use std::fmt;

/// Attribute flag: enclave was initialized in debug mode (its memory
/// is inspectable by the host — never trust it with secrets).
pub const DEBUG: u64 = 1 << 1;
/// Attribute flag: 64-bit mode.
pub const MODE64BIT: u64 = 1 << 2;
/// Attribute flag: the enclave may access the provisioning key.
pub const PROVISION_KEY: u64 = 1 << 4;
/// Attribute flag: the enclave may access the EINIT-token key (i.e.
/// can act as a launch enclave).
pub const EINITTOKEN_KEY: u64 = 1 << 5;

/// XFRM bit: AVX state enabled.
pub const XFRM_AVX: u64 = 1 << 2;
/// XFRM bit: CET state enabled.
pub const XFRM_CET: u64 = 1 << 11;

/// The attributes of an enclave: a flags word and an XFRM
/// (extended-feature request mask) word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Attributes {
    /// Flag bits (`DEBUG`, `MODE64BIT`, …).
    pub flags: u64,
    /// Extended processor feature bits (`XFRM_AVX`, …).
    pub xfrm: u64,
}

impl Attributes {
    /// Production 64-bit enclave with no extended features.
    #[must_use]
    pub fn production() -> Self {
        Attributes { flags: MODE64BIT, xfrm: 0 }
    }

    /// Debug 64-bit enclave.
    #[must_use]
    pub fn debug() -> Self {
        Attributes { flags: MODE64BIT | DEBUG, xfrm: 0 }
    }

    /// Whether the debug flag is set.
    #[must_use]
    pub fn is_debug(&self) -> bool {
        self.flags & DEBUG != 0
    }

    /// Returns a copy with extra flag bits set.
    #[must_use]
    pub fn with_flags(mut self, flags: u64) -> Self {
        self.flags |= flags;
        self
    }

    /// Returns a copy with extra XFRM bits set.
    #[must_use]
    pub fn with_xfrm(mut self, xfrm: u64) -> Self {
        self.xfrm |= xfrm;
        self
    }

    /// Checks this value against a SigStruct's `(attributes, mask)`
    /// pair: every masked bit must match the signed value.
    #[must_use]
    pub fn matches_masked(&self, signed: &Attributes, mask: &Attributes) -> bool {
        (self.flags & mask.flags) == (signed.flags & mask.flags)
            && (self.xfrm & mask.xfrm) == (signed.xfrm & mask.xfrm)
    }

    /// Serializes to the 16-byte little-endian SDM layout.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.flags.to_le_bytes());
        out[8..].copy_from_slice(&self.xfrm.to_le_bytes());
        out
    }

    /// Parses the 16-byte little-endian layout.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        Attributes {
            flags: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            xfrm: u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

impl fmt::Debug for Attributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.flags & DEBUG != 0 {
            names.push("DEBUG");
        }
        if self.flags & MODE64BIT != 0 {
            names.push("MODE64BIT");
        }
        if self.flags & PROVISION_KEY != 0 {
            names.push("PROVISION_KEY");
        }
        if self.flags & EINITTOKEN_KEY != 0 {
            names.push("EINITTOKEN_KEY");
        }
        write!(
            f,
            "Attributes({}, xfrm={:#x})",
            if names.is_empty() { "NONE".to_owned() } else { names.join("|") },
            self.xfrm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_is_not_debug() {
        assert!(!Attributes::production().is_debug());
        assert!(Attributes::debug().is_debug());
    }

    #[test]
    fn byte_roundtrip() {
        let a = Attributes::production().with_flags(PROVISION_KEY).with_xfrm(XFRM_AVX);
        assert_eq!(Attributes::from_bytes(&a.to_bytes()), a);
    }

    #[test]
    fn masked_matching() {
        let signed = Attributes::production();
        let full_mask = Attributes { flags: u64::MAX, xfrm: u64::MAX };
        // Exact match passes.
        assert!(Attributes::production().matches_masked(&signed, &full_mask));
        // A debug enclave fails a full-mask production SigStruct.
        assert!(!Attributes::debug().matches_masked(&signed, &full_mask));
        // …but passes if the mask ignores the debug bit.
        let lenient = Attributes { flags: !DEBUG, xfrm: u64::MAX };
        assert!(Attributes::debug().matches_masked(&signed, &lenient));
    }

    #[test]
    fn debug_format_lists_flags() {
        let s = format!("{:?}", Attributes::debug());
        assert!(s.contains("DEBUG") && s.contains("MODE64BIT"));
        assert!(format!("{:?}", Attributes::default()).contains("NONE"));
    }
}
