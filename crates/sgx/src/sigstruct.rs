//! The Enclave Signature Structure (SigStruct) verified by `EINIT`.
//!
//! The SigStruct binds an expected `MRENCLAVE`, allowed attributes, a
//! product id and a security version number under an RSA-3072
//! signature by the enclave signer (§2.2.2). SinClave's central trick
//! is the verifier creating **on-demand** SigStructs for
//! token-individualized measurements (§4.4) — so signing/verification
//! performance is measured directly in Fig. 7b.

use crate::attributes::Attributes;
use crate::error::SgxError;
use crate::measurement::Measurement;
use crate::verify_cache::{VerifyCache, VerifyCacheKey};
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_crypto::sha256::{self, Digest};
use sinclave_crypto::CryptoError;
use std::fmt;

/// Signed enclave metadata plus the signer's signature.
#[derive(Clone)]
pub struct SigStruct {
    body: SigStructBody,
    /// The signer's public key, carried in the structure as in real
    /// SGX (the modulus is part of the SigStruct layout).
    signer_key: RsaPublicKey,
    signature: Vec<u8>,
}

/// The signed fields of a SigStruct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SigStructBody {
    /// Expected enclave measurement.
    pub enclave_hash: Measurement,
    /// Attributes the enclave must be constructed with (under mask).
    pub attributes: Attributes,
    /// Mask selecting which attribute bits are enforced.
    pub attributes_mask: Attributes,
    /// Signer-assigned product id.
    pub isv_prod_id: u16,
    /// Signer-assigned security version number.
    pub isv_svn: u16,
    /// Build date, `YYYYMMDD` as an integer (informational).
    pub date: u32,
    /// Vendor id (informational; 0 for non-Intel).
    pub vendor: u32,
}

impl SigStructBody {
    /// Deterministic byte encoding of the signed fields.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 16 + 16 + 2 + 2 + 4 + 4 + 8);
        out.extend_from_slice(b"SIGSTRUC");
        out.extend_from_slice(self.enclave_hash.as_bytes());
        out.extend_from_slice(&self.attributes.to_bytes());
        out.extend_from_slice(&self.attributes_mask.to_bytes());
        out.extend_from_slice(&self.isv_prod_id.to_le_bytes());
        out.extend_from_slice(&self.isv_svn.to_le_bytes());
        out.extend_from_slice(&self.date.to_le_bytes());
        out.extend_from_slice(&self.vendor.to_le_bytes());
        out
    }
}

impl SigStruct {
    /// Creates and signs a SigStruct — what the `sgx_sign` tool (or
    /// SCONE's signer, Fig. 7a) does at build time, and what the
    /// SinClave verifier does on demand per singleton.
    ///
    /// # Errors
    ///
    /// Propagates signing failures from the RSA layer.
    pub fn sign(body: SigStructBody, signer: &RsaPrivateKey) -> Result<Self, CryptoError> {
        let signature = signer.sign(&body.to_bytes())?;
        Ok(SigStruct { body, signer_key: signer.public_key().clone(), signature })
    }

    /// The signed fields.
    #[must_use]
    pub fn body(&self) -> &SigStructBody {
        &self.body
    }

    /// The signer's public key.
    #[must_use]
    pub fn signer_key(&self) -> &RsaPublicKey {
        &self.signer_key
    }

    /// The signature bytes.
    #[must_use]
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// The signer identity (`MRSIGNER`): hash of the signer's key, as
    /// in real SGX where it is the SHA-256 of the key modulus.
    #[must_use]
    pub fn mrsigner(&self) -> Digest {
        self.signer_key.fingerprint()
    }

    /// Verifies the embedded signature (what `EINIT` does before
    /// comparing measurements).
    ///
    /// Note this only proves *someone* holding the embedded key signed
    /// it; binding that key to a trusted identity is the verifier's job
    /// via `MRSIGNER` (§2.2.2: "the adversary is free to modify it and
    /// subsequently sign it with their own key").
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::SigStructInvalid`] when verification fails.
    pub fn verify(&self) -> Result<(), SgxError> {
        self.signer_key
            .verify(&self.body.to_bytes(), &self.signature)
            .map_err(|_| SgxError::SigStructInvalid)
    }

    /// The [`VerifyCache`] key for this structure: the signer-key
    /// fingerprint concatenated with the evidence digest
    /// `SHA-256(body || signature)`.
    ///
    /// Folding the presented signature into the digest (not just the
    /// body) keeps the cached path observationally identical to
    /// re-running [`SigStruct::verify`]: a warm entry attests that
    /// *these exact bytes* verified under *this key*, so a later
    /// structure with the same body but a tampered signature misses
    /// the cache and fails the full check, exactly as without a cache.
    /// (PKCS#1 v1.5 signing is deterministic, so honest repeat
    /// presentations of one binary always produce the same key.)
    #[must_use]
    pub fn verify_cache_key(&self) -> VerifyCacheKey {
        let fingerprint = self.signer_key.fingerprint();
        let evidence = sha256::digest_parts(&[&self.body.to_bytes(), &self.signature]);
        let mut key = [0u8; crate::verify_cache::KEY_LEN];
        key[..32].copy_from_slice(fingerprint.as_bytes());
        key[32..].copy_from_slice(evidence.as_bytes());
        key
    }

    /// [`SigStruct::verify`] with a verification cache: a previously
    /// verified (signer, evidence) pair is a sharded lookup with a
    /// constant-time digest compare instead of an RSA exponentiation.
    ///
    /// Only successful verifications are admitted, so an attacker
    /// spraying invalid SigStructs pays the cold cost every time and
    /// cannot evict warm entries (callers wanting the stronger
    /// admission rule of "only *my* signer's structures occupy slots"
    /// must check the signer identity before calling, as the singleton
    /// issuer does — an attacker can mint validly signed structures
    /// under their own key).
    ///
    /// # Errors
    ///
    /// Same as [`SigStruct::verify`].
    pub fn verify_cached(&self, cache: &VerifyCache) -> Result<(), SgxError> {
        let key = self.verify_cache_key();
        if cache.contains(&key) {
            return Ok(());
        }
        self.verify()?;
        cache.admit(key);
        Ok(())
    }

    /// Serializes the full structure (body, key, signature).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.body.to_bytes();
        let key = self.signer_key.to_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&key);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a structure serialized by [`SigStruct::to_bytes`].
    ///
    /// The signature is *not* checked here; call [`SigStruct::verify`].
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Malformed`] on framing errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let malformed = SgxError::Malformed { context: "sigstruct" };
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], SgxError> {
            if cursor.len() < n {
                return Err(SgxError::Malformed { context: "sigstruct" });
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        let mut cursor = bytes;
        let body_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let body_bytes = take(&mut cursor, body_len)?.to_vec();
        let key_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let key_bytes = take(&mut cursor, key_len)?.to_vec();
        let sig_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let signature = take(&mut cursor, sig_len)?.to_vec();
        if !cursor.is_empty() {
            return Err(malformed);
        }
        let body = SigStructBody::from_bytes(&body_bytes)?;
        let signer_key = RsaPublicKey::from_bytes(&key_bytes)
            .map_err(|_| SgxError::Malformed { context: "sigstruct key" })?;
        Ok(SigStruct { body, signer_key, signature })
    }
}

impl SigStructBody {
    /// Parses the deterministic encoding from [`SigStructBody::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Malformed`] for wrong magic or length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let malformed = SgxError::Malformed { context: "sigstruct body" };
        if bytes.len() != 8 + 32 + 16 + 16 + 2 + 2 + 4 + 4 || &bytes[..8] != b"SIGSTRUC" {
            return Err(malformed);
        }
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&bytes[8..40]);
        let attributes = Attributes::from_bytes(bytes[40..56].try_into().expect("16"));
        let attributes_mask = Attributes::from_bytes(bytes[56..72].try_into().expect("16"));
        let isv_prod_id = u16::from_le_bytes(bytes[72..74].try_into().expect("2"));
        let isv_svn = u16::from_le_bytes(bytes[74..76].try_into().expect("2"));
        let date = u32::from_le_bytes(bytes[76..80].try_into().expect("4"));
        let vendor = u32::from_le_bytes(bytes[80..84].try_into().expect("4"));
        Ok(SigStructBody {
            enclave_hash: Measurement(sha256::Digest(hash)),
            attributes,
            attributes_mask,
            isv_prod_id,
            isv_svn,
            date,
            vendor,
        })
    }
}

impl fmt::Debug for SigStruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SigStruct")
            .field("enclave_hash", &self.body.enclave_hash)
            .field("mrsigner", &self.mrsigner().to_hex()[..16].to_owned())
            .field("isv_prod_id", &self.body.isv_prod_id)
            .field("isv_svn", &self.body.isv_svn)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signer() -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(42);
        RsaPrivateKey::generate(&mut rng, 1024).expect("keygen")
    }

    fn body(hash_fill: u8) -> SigStructBody {
        SigStructBody {
            enclave_hash: Measurement(sha256::Digest([hash_fill; 32])),
            attributes: Attributes::production(),
            attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
            isv_prod_id: 1,
            isv_svn: 2,
            date: 20230411,
            vendor: 0,
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = signer();
        let ss = SigStruct::sign(body(7), &key).unwrap();
        ss.verify().unwrap();
        assert_eq!(ss.mrsigner(), key.public_key().fingerprint());
    }

    #[test]
    fn tampered_body_fails_verification() {
        let key = signer();
        let ss = SigStruct::sign(body(7), &key).unwrap();
        let mut tampered = ss.clone();
        tampered.body.isv_svn = 99;
        assert_eq!(tampered.verify(), Err(SgxError::SigStructInvalid));
    }

    #[test]
    fn adversary_resign_changes_mrsigner() {
        // §2.2.2: the adversary can re-sign a modified SigStruct with
        // their own key — EINIT passes, but MRSIGNER changes.
        let honest = signer();
        let mut rng = StdRng::seed_from_u64(1337);
        let adversary = RsaPrivateKey::generate(&mut rng, 1024).unwrap();

        let original = SigStruct::sign(body(7), &honest).unwrap();
        let mut altered_body = body(7);
        altered_body.attributes = Attributes::debug();
        let resigned = SigStruct::sign(altered_body, &adversary).unwrap();

        resigned.verify().unwrap(); // signature itself is fine…
        assert_ne!(resigned.mrsigner(), original.mrsigner()); // …identity differs
    }

    #[test]
    fn serialization_roundtrip() {
        let ss = SigStruct::sign(body(3), &signer()).unwrap();
        let bytes = ss.to_bytes();
        let parsed = SigStruct::from_bytes(&bytes).unwrap();
        parsed.verify().unwrap();
        assert_eq!(parsed.body(), ss.body());
        assert_eq!(parsed.signature(), ss.signature());
        assert_eq!(parsed.mrsigner(), ss.mrsigner());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(SigStruct::from_bytes(&[]).is_err());
        assert!(SigStruct::from_bytes(&[0u8; 10]).is_err());
        let ss = SigStruct::sign(body(3), &signer()).unwrap();
        let mut bytes = ss.to_bytes();
        bytes.push(0);
        assert!(SigStruct::from_bytes(&bytes).is_err(), "trailing bytes rejected");
        assert!(SigStructBody::from_bytes(b"NOTMAGIC").is_err());
    }

    #[test]
    fn verify_cached_warms_and_matches_cold_verify() {
        let key = signer();
        let ss = SigStruct::sign(body(7), &key).unwrap();
        let cache = VerifyCache::new();
        assert!(cache.is_empty());
        ss.verify_cached(&cache).unwrap(); // cold: full RSA check + admit
        assert_eq!(cache.len(), 1);
        ss.verify_cached(&cache).unwrap(); // warm: lookup only
        assert_eq!(cache.len(), 1);
        // The cached outcome agrees with the uncached path.
        ss.verify().unwrap();
    }

    #[test]
    fn tampered_signature_misses_cache_and_fails() {
        let key = signer();
        let ss = SigStruct::sign(body(7), &key).unwrap();
        let cache = VerifyCache::new();
        ss.verify_cached(&cache).unwrap();
        // Same body, flipped signature bit: the evidence digest covers
        // the signature, so this misses the warm entry and fails the
        // full check — bit-identical behavior to the uncached path.
        let mut tampered = ss.clone();
        tampered.signature[0] ^= 1;
        assert_ne!(tampered.verify_cache_key(), ss.verify_cache_key());
        assert_eq!(tampered.verify_cached(&cache), Err(SgxError::SigStructInvalid));
        // The failure was not admitted; the legitimate entry survives.
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&ss.verify_cache_key()));
    }

    #[test]
    fn spraying_invalid_sigstructs_cannot_evict_warm_entries() {
        let key = signer();
        let warm = SigStruct::sign(body(1), &key).unwrap();
        let cache = VerifyCache::with_capacity(16);
        warm.verify_cached(&cache).unwrap();
        for fill in 0..64u8 {
            let mut bogus = SigStruct::sign(body(fill), &key).unwrap();
            bogus.signature[3] ^= 0xff; // break the signature
            assert!(bogus.verify_cached(&cache).is_err());
        }
        assert_eq!(cache.len(), 1, "failed verifications must not be admitted");
        assert!(cache.contains(&warm.verify_cache_key()));
    }

    #[test]
    fn cache_key_separates_signers_and_bodies() {
        let honest = signer();
        let mut rng = StdRng::seed_from_u64(99);
        let other = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let a = SigStruct::sign(body(1), &honest).unwrap();
        let b = SigStruct::sign(body(1), &other).unwrap();
        let c = SigStruct::sign(body(2), &honest).unwrap();
        assert_ne!(a.verify_cache_key(), b.verify_cache_key(), "signer in key");
        assert_ne!(a.verify_cache_key(), c.verify_cache_key(), "body in key");
        // A warm entry for one signer never answers for another.
        let cache = VerifyCache::new();
        a.verify_cached(&cache).unwrap();
        assert!(!cache.contains(&b.verify_cache_key()));
    }

    #[test]
    fn body_encoding_is_injective_in_every_field() {
        let reference = body(1).to_bytes();
        let mut b2 = body(1);
        b2.isv_prod_id = 9;
        assert_ne!(b2.to_bytes(), reference);
        let mut b3 = body(1);
        b3.attributes_mask = Attributes::default();
        assert_ne!(b3.to_bytes(), reference);
        let mut b4 = body(1);
        b4.date = 1;
        assert_ne!(b4.to_bytes(), reference);
        assert_ne!(body(2).to_bytes(), reference);
    }
}
