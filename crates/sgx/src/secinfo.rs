//! Page security information (`SECINFO`): page type and permissions.
//!
//! `EADD` measures the page offset *and* its SECINFO flags, so two
//! enclaves that differ only in a page's permissions have different
//! `MRENCLAVE`s — a property SinClave's verifier-side measurement
//! prediction must reproduce exactly.

use std::fmt;

/// The type of an enclave page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PageType {
    /// Regular data/code page.
    Reg,
    /// Thread control structure page.
    Tcs,
}

impl PageType {
    fn to_bits(self) -> u64 {
        match self {
            PageType::Reg => 0x01 << 8,
            PageType::Tcs => 0x02 << 8,
        }
    }
}

/// Page permission flag: readable.
pub const PERM_R: u8 = 1 << 0;
/// Page permission flag: writable.
pub const PERM_W: u8 = 1 << 1;
/// Page permission flag: executable.
pub const PERM_X: u8 = 1 << 2;

/// Security information for one enclave page.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecInfo {
    /// Page type.
    pub page_type: PageType,
    /// Permission bits (`PERM_R` | `PERM_W` | `PERM_X`).
    pub perms: u8,
}

impl SecInfo {
    /// Regular read-only executable page (code).
    #[must_use]
    pub fn code() -> Self {
        SecInfo { page_type: PageType::Reg, perms: PERM_R | PERM_X }
    }

    /// Regular read-write page (data/heap).
    #[must_use]
    pub fn data() -> Self {
        SecInfo { page_type: PageType::Reg, perms: PERM_R | PERM_W }
    }

    /// Regular read-only page.
    #[must_use]
    pub fn read_only() -> Self {
        SecInfo { page_type: PageType::Reg, perms: PERM_R }
    }

    /// Thread control structure page.
    #[must_use]
    pub fn tcs() -> Self {
        SecInfo { page_type: PageType::Tcs, perms: 0 }
    }

    /// The 64-bit flags word as measured by `EADD` (SDM layout:
    /// permission bits in bits 0..2, page type in bits 8..15).
    #[must_use]
    pub fn flags_word(&self) -> u64 {
        self.perms as u64 | self.page_type.to_bits()
    }

    /// The 48 SECINFO bytes covered by the `EADD` measurement record:
    /// the flags word followed by reserved zeros.
    #[must_use]
    pub fn measured_bytes(&self) -> [u8; 48] {
        let mut out = [0u8; 48];
        out[..8].copy_from_slice(&self.flags_word().to_le_bytes());
        out
    }
}

impl fmt::Debug for SecInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.perms & PERM_R != 0 { "r" } else { "-" };
        let w = if self.perms & PERM_W != 0 { "w" } else { "-" };
        let x = if self.perms & PERM_X != 0 { "x" } else { "-" };
        write!(f, "SecInfo({:?}, {r}{w}{x})", self.page_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_words_are_distinct() {
        let words = [
            SecInfo::code().flags_word(),
            SecInfo::data().flags_word(),
            SecInfo::read_only().flags_word(),
            SecInfo::tcs().flags_word(),
        ];
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                assert_ne!(words[i], words[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn measured_bytes_layout() {
        let b = SecInfo::code().measured_bytes();
        assert_eq!(b.len(), 48);
        assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), SecInfo::code().flags_word());
        assert!(b[8..].iter().all(|&x| x == 0));
    }

    #[test]
    fn debug_shows_permissions() {
        assert_eq!(format!("{:?}", SecInfo::code()), "SecInfo(Reg, r-x)");
        assert_eq!(format!("{:?}", SecInfo::data()), "SecInfo(Reg, rw-)");
    }
}
