//! SGX Enclave Control Structure (SECS) — the enclave's metadata
//! record created by `ECREATE` (§2.2.1).

use crate::attributes::Attributes;
use crate::measurement::Measurement;
use crate::PAGE_SIZE;
use sinclave_crypto::sha256::Digest;

/// The metadata of an enclave, fixed at `ECREATE` and completed at
/// `EINIT`.
#[derive(Clone, Debug)]
pub struct Secs {
    /// Total enclave size in bytes (power of two in real SGX; here
    /// only page alignment is required).
    pub size: u64,
    /// Simulated base address of the enclave range (`ERANGE`).
    pub base_address: u64,
    /// SSA frame size in pages.
    pub ssa_frame_size: u32,
    /// Enclave attributes.
    pub attributes: Attributes,
    /// Measured identity; `None` until `EINIT`.
    pub mrenclave: Option<Measurement>,
    /// Signer identity (hash of the SigStruct key); `None` until `EINIT`.
    pub mrsigner: Option<Digest>,
    /// Product id assigned by the signer.
    pub isv_prod_id: u16,
    /// Security version number assigned by the signer.
    pub isv_svn: u16,
}

impl Secs {
    /// Creates the SECS as `ECREATE` would.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not page-aligned.
    #[must_use]
    pub fn create(
        size: u64,
        base_address: u64,
        ssa_frame_size: u32,
        attributes: Attributes,
    ) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(PAGE_SIZE as u64),
            "enclave size must be page-aligned"
        );
        Secs {
            size,
            base_address,
            ssa_frame_size,
            attributes,
            mrenclave: None,
            mrsigner: None,
            isv_prod_id: 0,
            isv_svn: 0,
        }
    }

    /// Whether `EINIT` has completed.
    #[must_use]
    pub fn is_initialized(&self) -> bool {
        self.mrenclave.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_initialize() {
        let secs = Secs::create(0x10000, 0x7000_0000, 1, Attributes::production());
        assert!(!secs.is_initialized());
        assert_eq!(secs.size, 0x10000);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn rejects_unaligned_size() {
        let _ = Secs::create(0x10001, 0, 1, Attributes::production());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn rejects_zero_size() {
        let _ = Secs::create(0, 0, 1, Attributes::production());
    }
}
