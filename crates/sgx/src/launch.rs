//! Launch control: `EINITTOKEN`s and launch policies (§2.2.2).
//!
//! In first-generation SGX only whitelisted signers could run
//! production enclaves, gated by a launch enclave issuing
//! `EINITTOKEN`s; Flexible Launch Control (FLC) later let the platform
//! owner run anything. Both modes are modeled, because SinClave's
//! on-demand SigStructs must work under either.

use crate::attributes::Attributes;
use crate::error::SgxError;
use crate::measurement::Measurement;
use crate::platform::Platform;
use sinclave_crypto::hmac;
use sinclave_crypto::sha256::Digest;
use std::sync::Arc;

/// The platform's launch policy.
#[derive(Clone, Debug)]
pub enum LaunchControl {
    /// Flexible launch control: any enclave may start (the modern
    /// default the paper assumes).
    Flexible,
    /// Legacy policy: production enclaves need an `EINITTOKEN` from
    /// the launch enclave, which only issues them for whitelisted
    /// signers (debug enclaves are always allowed).
    TokenRequired {
        /// `MRSIGNER` values allowed to run in production mode.
        whitelist: Vec<Digest>,
    },
}

/// A token authorizing one specific enclave identity to launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EinitToken {
    /// The enclave measurement this token authorizes.
    pub mrenclave: Measurement,
    /// The signer identity this token authorizes.
    pub mrsigner: Digest,
    /// The attributes this token authorizes.
    pub attributes: Attributes,
    /// MAC under the platform launch key.
    pub mac: [u8; 32],
}

impl EinitToken {
    fn mac_input(mrenclave: &Measurement, mrsigner: &Digest, attributes: &Attributes) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 32 + 16);
        out.extend_from_slice(mrenclave.as_bytes());
        out.extend_from_slice(mrsigner.as_bytes());
        out.extend_from_slice(&attributes.to_bytes());
        out
    }

    /// Checks the token's MAC and identity fields against a concrete
    /// enclave on a concrete platform.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::LaunchDenied`] when the token does not
    /// authorize this exact enclave.
    pub fn validate(
        &self,
        platform: &Platform,
        mrenclave: &Measurement,
        mrsigner: &Digest,
        attributes: &Attributes,
    ) -> Result<(), SgxError> {
        if &self.mrenclave != mrenclave
            || &self.mrsigner != mrsigner
            || &self.attributes != attributes
        {
            return Err(SgxError::LaunchDenied { reason: "token identity mismatch" });
        }
        let input = Self::mac_input(mrenclave, mrsigner, attributes);
        if !hmac::verify(&platform.launch_key(), &input, &self.mac) {
            return Err(SgxError::LaunchDenied { reason: "token mac invalid" });
        }
        Ok(())
    }
}

/// The launch enclave: the dedicated system enclave that issues
/// `EINITTOKEN`s (§2.2.2).
#[derive(Debug)]
pub struct LaunchEnclave {
    platform: Arc<Platform>,
    whitelist: Vec<Digest>,
}

impl LaunchEnclave {
    /// Creates a launch enclave enforcing a signer whitelist.
    #[must_use]
    pub fn new(platform: Arc<Platform>, whitelist: Vec<Digest>) -> Self {
        LaunchEnclave { platform, whitelist }
    }

    /// Issues a token for the given enclave identity.
    ///
    /// Debug-mode enclaves are always allowed (as Intel's launch
    /// enclave did); production enclaves need a whitelisted signer.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::LaunchDenied`] for non-whitelisted
    /// production signers.
    pub fn issue_token(
        &self,
        mrenclave: &Measurement,
        mrsigner: &Digest,
        attributes: &Attributes,
    ) -> Result<EinitToken, SgxError> {
        if !attributes.is_debug() && !self.whitelist.contains(mrsigner) {
            return Err(SgxError::LaunchDenied { reason: "signer not whitelisted" });
        }
        let input = EinitToken::mac_input(mrenclave, mrsigner, attributes);
        let mac = hmac::hmac(&self.platform.launch_key(), &input).to_bytes();
        Ok(EinitToken { mrenclave: *mrenclave, mrsigner: *mrsigner, attributes: *attributes, mac })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform(seed: u64) -> Arc<Platform> {
        Arc::new(Platform::new(&mut StdRng::seed_from_u64(seed)))
    }

    fn identities() -> (Measurement, Digest, Attributes) {
        (Measurement(Digest([1; 32])), Digest([2; 32]), Attributes::production())
    }

    #[test]
    fn whitelisted_signer_gets_valid_token() {
        let p = platform(1);
        let (mre, mrs, attrs) = identities();
        let le = LaunchEnclave::new(p.clone(), vec![mrs]);
        let token = le.issue_token(&mre, &mrs, &attrs).unwrap();
        token.validate(&p, &mre, &mrs, &attrs).unwrap();
    }

    #[test]
    fn non_whitelisted_production_signer_denied() {
        let p = platform(2);
        let (mre, mrs, attrs) = identities();
        let le = LaunchEnclave::new(p, vec![]);
        assert!(matches!(le.issue_token(&mre, &mrs, &attrs), Err(SgxError::LaunchDenied { .. })));
    }

    #[test]
    fn debug_enclaves_always_get_tokens() {
        let p = platform(3);
        let (mre, mrs, _) = identities();
        let le = LaunchEnclave::new(p, vec![]);
        assert!(le.issue_token(&mre, &mrs, &Attributes::debug()).is_ok());
    }

    #[test]
    fn token_bound_to_identity() {
        let p = platform(4);
        let (mre, mrs, attrs) = identities();
        let le = LaunchEnclave::new(p.clone(), vec![mrs]);
        let token = le.issue_token(&mre, &mrs, &attrs).unwrap();
        let other = Measurement(Digest([9; 32]));
        assert!(token.validate(&p, &other, &mrs, &attrs).is_err());
        assert!(token.validate(&p, &mre, &Digest([9; 32]), &attrs).is_err());
        assert!(token.validate(&p, &mre, &mrs, &Attributes::debug()).is_err());
    }

    #[test]
    fn token_bound_to_platform() {
        let p1 = platform(5);
        let p2 = platform(6);
        let (mre, mrs, attrs) = identities();
        let le = LaunchEnclave::new(p1, vec![mrs]);
        let token = le.issue_token(&mre, &mrs, &attrs).unwrap();
        assert!(matches!(
            token.validate(&p2, &mre, &mrs, &attrs),
            Err(SgxError::LaunchDenied { reason: "token mac invalid" })
        ));
    }

    #[test]
    fn forged_mac_rejected() {
        let p = platform(7);
        let (mre, mrs, attrs) = identities();
        let le = LaunchEnclave::new(p.clone(), vec![mrs]);
        let mut token = le.issue_token(&mre, &mrs, &attrs).unwrap();
        token.mac[0] ^= 1;
        assert!(token.validate(&p, &mre, &mrs, &attrs).is_err());
    }
}
