//! Bounded, sharded cache of successful SigStruct verifications.
//!
//! Every grant request carries the *common* SigStruct of the enclave
//! binary, and for repeat binaries the verifier re-runs the same
//! ~0.4 ms RSA verification per connection (Fig. 7c's verification
//! component). The same keep-the-state argument the measurement
//! midstate cache applies to hash prefixes applies to verification
//! results: an RSA signature check over immutable bytes is a pure
//! function, so its outcome can be remembered. This module provides
//! that memory as a bounded, sharded set of verified
//! `(signer-key fingerprint, evidence digest)` pairs.
//!
//! Design constraints, mirroring the prepared-midstate cache:
//!
//! * **Bounded.** Keys arrive from the network; at most
//!   [`VerifyCache::DEFAULT_CAPACITY`] entries stay warm, in fixed
//!   per-shard rings.
//! * **Admission = successful verification.** Only keys whose RSA
//!   check passed are ever inserted ([`VerifyCache::admit`] is called
//!   by [`SigStruct::verify_cached`] after `verify()` succeeds, and the
//!   issuer additionally pins the signer identity first). Spraying
//!   bogus SigStructs therefore pays the full cold verification cost
//!   every time and can never evict legitimate warm entries.
//! * **Constant-time lookup compare.** Shard scans compare digests
//!   with [`sinclave_crypto::ct::eq`] and never exit early, so lookup
//!   timing does not reveal how much of a probed key matched an
//!   admitted one.
//!
//! [`SigStruct::verify_cached`]: crate::sigstruct::SigStruct::verify_cached

use parking_lot::Mutex;
use sinclave_crypto::ct;

/// Length of a cache key: a 32-byte signer-key fingerprint followed by
/// a 32-byte evidence digest (see
/// [`SigStruct::verify_cache_key`](crate::sigstruct::SigStruct::verify_cache_key)).
pub const KEY_LEN: usize = 64;

/// A verified-evidence key: `signer fingerprint || evidence digest`.
pub type VerifyCacheKey = [u8; KEY_LEN];

/// Number of independent lock shards. Keys are SHA-256 outputs, so a
/// cheap fold spreads concurrent lookups uniformly; 16 matches the
/// issuer's token and midstate shard counts.
const SHARDS: usize = 16;

/// One shard: a fixed-capacity ring of admitted keys. Admission order
/// doubles as eviction order (oldest verified entry is overwritten
/// first once the ring is full).
struct Shard {
    entries: Vec<VerifyCacheKey>,
    /// Next ring slot to overwrite once `entries` is at capacity.
    next: usize,
}

/// A bounded, sharded set of verified SigStruct evidence keys.
pub struct VerifyCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard: usize,
}

impl Default for VerifyCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VerifyCache {
    /// Default total capacity, matching the issuer's prepared-midstate
    /// cache: far more distinct signed binaries than one verifier
    /// serves in practice.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a cache with [`VerifyCache::DEFAULT_CAPACITY`] slots.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache holding at most `capacity` keys (rounded up to
    /// a whole number per shard, minimum one per shard).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        VerifyCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard { entries: Vec::new(), next: 0 }))
                .collect(),
            per_shard,
        }
    }

    /// Shard index for a key (the stack-wide FNV-1a fold; keys are
    /// hash outputs, so any cheap fold spreads them uniformly).
    fn shard_of(key: &VerifyCacheKey) -> usize {
        sinclave_crypto::shard::fnv1a_index(key, SHARDS)
    }

    /// Whether `key` was previously admitted.
    ///
    /// Scans the whole shard with a constant-time digest compare and
    /// no early exit: the lookup's timing depends only on the shard's
    /// fill level, never on how closely a probed key resembles an
    /// admitted one.
    #[must_use]
    pub fn contains(&self, key: &VerifyCacheKey) -> bool {
        let shard = self.shards[Self::shard_of(key)].lock();
        let mut found = false;
        for entry in &shard.entries {
            found |= ct::eq(entry, key);
        }
        found
    }

    /// Admits a key whose verification succeeded. Once the shard ring
    /// is full the oldest admitted key is overwritten — only ever
    /// another *verified* key, since nothing else is admitted.
    pub fn admit(&self, key: VerifyCacheKey) {
        let mut shard = self.shards[Self::shard_of(&key)].lock();
        let mut present = false;
        for entry in &shard.entries {
            present |= ct::eq(entry, &key);
        }
        if present {
            return;
        }
        if shard.entries.len() < self.per_shard {
            shard.entries.push(key);
        } else {
            let slot = shard.next;
            shard.entries[slot] = key;
            shard.next = (slot + 1) % self.per_shard;
        }
    }

    /// Exports every admitted key, shard by shard, oldest admission
    /// first within each shard — the order re-admitting them through
    /// [`VerifyCache::admit`] preserves, so a cache rebuilt from an
    /// export keeps the original eviction order. This is the
    /// snapshot-side half of verify-cache persistence: the caller
    /// (the singleton issuer) seals these keys into its encrypted
    /// state so a restarted verifier comes up warm.
    ///
    /// The export is deterministic for a given admission history,
    /// which keeps snapshot bytes reproducible.
    #[must_use]
    pub fn export_keys(&self) -> Vec<VerifyCacheKey> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            if shard.entries.len() < self.per_shard {
                // Ring has not wrapped: insertion order is index order.
                out.extend_from_slice(&shard.entries);
            } else {
                // Wrapped ring: the oldest entry is at `next`.
                out.extend_from_slice(&shard.entries[shard.next..]);
                out.extend_from_slice(&shard.entries[..shard.next]);
            }
        }
        out
    }

    /// Number of admitted keys across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether no key has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fill: u8) -> VerifyCacheKey {
        let mut k = [fill; KEY_LEN];
        // Vary more than one byte so FNV spreads the test keys.
        k[0] = fill.wrapping_mul(31);
        k
    }

    #[test]
    fn admitted_keys_are_found() {
        let cache = VerifyCache::new();
        assert!(cache.is_empty());
        assert!(!cache.contains(&key(1)));
        cache.admit(key(1));
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn duplicate_admission_occupies_one_slot() {
        let cache = VerifyCache::new();
        cache.admit(key(7));
        cache.admit(key(7));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_bounded_and_eviction_is_oldest_first() {
        // One slot per shard: the second admission to a shard evicts
        // the first.
        let cache = VerifyCache::with_capacity(SHARDS);
        let mut admitted = Vec::new();
        for fill in 0..=255u8 {
            cache.admit(key(fill));
            admitted.push(key(fill));
        }
        assert!(cache.len() <= SHARDS, "len {} above capacity", cache.len());
        // The most recent key admitted to each shard is still present.
        let mut latest_per_shard = std::collections::HashMap::new();
        for k in &admitted {
            latest_per_shard.insert(VerifyCache::shard_of(k), *k);
        }
        for k in latest_per_shard.values() {
            assert!(cache.contains(k), "most recent admission evicted");
        }
    }

    #[test]
    fn export_roundtrips_through_admit() {
        let cache = VerifyCache::new();
        for fill in 0..40u8 {
            cache.admit(key(fill));
        }
        let exported = cache.export_keys();
        assert_eq!(exported.len(), cache.len());
        let rebuilt = VerifyCache::new();
        for k in &exported {
            rebuilt.admit(*k);
        }
        assert_eq!(rebuilt.len(), cache.len());
        for fill in 0..40u8 {
            assert!(rebuilt.contains(&key(fill)), "fill {fill} lost in export");
        }
        // Same admission history → same export bytes (snapshots are
        // reproducible).
        assert_eq!(rebuilt.export_keys(), exported);
    }

    #[test]
    fn export_preserves_eviction_order_across_rebuild() {
        // One slot per shard, so every shard ring wraps; the export
        // must surface the *surviving* (newest) key of each shard, and
        // a rebuilt cache must behave identically.
        let cache = VerifyCache::with_capacity(SHARDS);
        for fill in 0..=255u8 {
            cache.admit(key(fill));
        }
        let rebuilt = VerifyCache::with_capacity(SHARDS);
        for k in cache.export_keys() {
            rebuilt.admit(k);
        }
        for fill in 0..=255u8 {
            assert_eq!(cache.contains(&key(fill)), rebuilt.contains(&key(fill)), "fill {fill}");
        }
        assert_eq!(rebuilt.export_keys(), cache.export_keys());
    }

    #[test]
    fn near_miss_keys_are_not_found() {
        let cache = VerifyCache::new();
        let k = key(9);
        cache.admit(k);
        for i in 0..KEY_LEN {
            let mut probe = k;
            probe[i] ^= 1;
            assert!(!cache.contains(&probe), "bit flip at byte {i} matched");
        }
    }
}
