//! The attestation infrastructure of the TEE provider (§2.2.3, §3.1):
//! the key-generation facility that knows each platform's provisioning
//! secret and the service that certifies attestation keys and anchors
//! quote verification.

use crate::error::SgxError;
use parking_lot::Mutex;
use rand::RngCore;
use sinclave_crypto::ct;
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_crypto::sha256::Digest;
use std::collections::HashMap;
use std::fmt;

/// A certificate binding a quoting enclave's public key to a platform,
/// signed by the attestation service's root key.
#[derive(Clone, PartialEq, Eq)]
pub struct QeCertificate {
    /// The platform the key was provisioned on.
    pub platform_id: [u8; 16],
    /// Serialized quoting-enclave public key.
    pub qe_key_bytes: Vec<u8>,
    /// Root signature over `platform_id || qe_key_bytes`.
    pub signature: Vec<u8>,
}

impl fmt::Debug for QeCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hexid: String = self.platform_id.iter().map(|b| format!("{b:02x}")).collect();
        f.debug_struct("QeCertificate").field("platform_id", &hexid).finish()
    }
}

impl QeCertificate {
    fn signed_bytes(platform_id: &[u8; 16], qe_key_bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + qe_key_bytes.len());
        out.extend_from_slice(b"QE-CERT\0");
        out.extend_from_slice(platform_id);
        out.extend_from_slice(qe_key_bytes);
        out
    }

    /// Verifies the root signature and returns the certified key.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteInvalid`] for a bad signature or an
    /// unparsable key.
    pub fn verify(&self, root: &RsaPublicKey) -> Result<RsaPublicKey, SgxError> {
        root.verify(&Self::signed_bytes(&self.platform_id, &self.qe_key_bytes), &self.signature)
            .map_err(|_| SgxError::QuoteInvalid { reason: "qe certificate signature invalid" })?;
        RsaPublicKey::from_bytes(&self.qe_key_bytes)
            .map_err(|_| SgxError::QuoteInvalid { reason: "qe certificate key malformed" })
    }

    /// Serializes the certificate.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.platform_id);
        out.extend_from_slice(&(self.qe_key_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.qe_key_bytes);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a certificate serialized by [`QeCertificate::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Malformed`] on framing errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let malformed = SgxError::Malformed { context: "qe certificate" };
        if bytes.len() < 20 {
            return Err(malformed);
        }
        let mut platform_id = [0u8; 16];
        platform_id.copy_from_slice(&bytes[..16]);
        let key_len = u32::from_be_bytes(bytes[16..20].try_into().expect("4")) as usize;
        if bytes.len() < 20 + key_len + 4 {
            return Err(malformed);
        }
        let qe_key_bytes = bytes[20..20 + key_len].to_vec();
        let sig_off = 20 + key_len;
        let sig_len =
            u32::from_be_bytes(bytes[sig_off..sig_off + 4].try_into().expect("4")) as usize;
        if bytes.len() != sig_off + 4 + sig_len {
            return Err(malformed);
        }
        let signature = bytes[sig_off + 4..].to_vec();
        Ok(QeCertificate { platform_id, qe_key_bytes, signature })
    }
}

/// The TEE provider's attestation service.
///
/// Holds the root signing key that quote verifiers trust, and the
/// manufacturing database of provisioning secrets used to decide
/// whether an attestation key really lives on a genuine platform.
pub struct AttestationService {
    root_key: RsaPrivateKey,
    registered: Mutex<HashMap<[u8; 16], [u8; 32]>>,
}

impl fmt::Debug for AttestationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttestationService")
            .field("platforms", &self.registered.lock().len())
            .finish()
    }
}

impl AttestationService {
    /// Creates a service with a fresh root key of `key_bits` bits.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<R: RngCore + ?Sized>(rng: &mut R, key_bits: usize) -> Result<Self, SgxError> {
        let root_key = RsaPrivateKey::generate(rng, key_bits)
            .map_err(|_| SgxError::Malformed { context: "attestation root key" })?;
        Ok(AttestationService { root_key, registered: Mutex::new(HashMap::new()) })
    }

    /// Registers a manufactured platform (key-generation facility
    /// step: the provisioning secret is stored by the service).
    pub fn register_platform(&self, record: ([u8; 16], [u8; 32])) {
        self.registered.lock().insert(record.0, record.1);
    }

    /// The verification anchor for quotes.
    #[must_use]
    pub fn root_public_key(&self) -> &RsaPublicKey {
        self.root_key.public_key()
    }

    /// Certifies an attestation (quoting-enclave) key after checking a
    /// proof of provisioning-secret knowledge from the platform.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteInvalid`] for unknown platforms or a
    /// wrong binding proof.
    pub fn certify_attestation_key(
        &self,
        platform_id: [u8; 16],
        challenge: &[u8],
        binding: &Digest,
        qe_key: &RsaPublicKey,
    ) -> Result<QeCertificate, SgxError> {
        let registered = self.registered.lock();
        let secret = registered
            .get(&platform_id)
            .ok_or(SgxError::QuoteInvalid { reason: "unknown platform" })?;
        let mut data = Vec::with_capacity(32 + 16 + challenge.len());
        data.extend_from_slice(secret);
        data.extend_from_slice(&platform_id);
        data.extend_from_slice(challenge);
        let expect = sinclave_crypto::sha256::digest(&data);
        if !ct::eq(expect.as_bytes(), binding.as_bytes()) {
            return Err(SgxError::QuoteInvalid { reason: "provisioning binding invalid" });
        }
        drop(registered);

        let qe_key_bytes = qe_key.to_bytes();
        let signature = self
            .root_key
            .sign(&QeCertificate::signed_bytes(&platform_id, &qe_key_bytes))
            .map_err(|_| SgxError::Malformed { context: "certificate signing" })?;
        Ok(QeCertificate { platform_id, qe_key_bytes, signature })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (AttestationService, Platform, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(21);
        let service = AttestationService::new(&mut rng, 1024).unwrap();
        let platform = Platform::new(&mut rng);
        service.register_platform(platform.manufacturing_record());
        let qe_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        (service, platform, qe_key)
    }

    #[test]
    fn certify_and_verify_roundtrip() {
        let (service, platform, qe_key) = setup();
        let challenge = qe_key.public_key().fingerprint();
        let binding = platform.provisioning_binding(challenge.as_bytes());
        let cert = service
            .certify_attestation_key(
                platform.platform_id(),
                challenge.as_bytes(),
                &binding,
                qe_key.public_key(),
            )
            .unwrap();
        let verified = cert.verify(service.root_public_key()).unwrap();
        assert_eq!(&verified, qe_key.public_key());
    }

    #[test]
    fn unknown_platform_rejected() {
        let (service, platform, qe_key) = setup();
        let challenge = b"c";
        let binding = platform.provisioning_binding(challenge);
        assert!(matches!(
            service.certify_attestation_key([9; 16], challenge, &binding, qe_key.public_key()),
            Err(SgxError::QuoteInvalid { reason: "unknown platform" })
        ));
    }

    #[test]
    fn wrong_binding_rejected() {
        let (service, platform, qe_key) = setup();
        let binding = platform.provisioning_binding(b"for another challenge");
        assert!(matches!(
            service.certify_attestation_key(
                platform.platform_id(),
                b"challenge",
                &binding,
                qe_key.public_key()
            ),
            Err(SgxError::QuoteInvalid { reason: "provisioning binding invalid" })
        ));
    }

    #[test]
    fn certificate_tamper_detected() {
        let (service, platform, qe_key) = setup();
        let challenge = b"c";
        let binding = platform.provisioning_binding(challenge);
        let mut cert = service
            .certify_attestation_key(
                platform.platform_id(),
                challenge,
                &binding,
                qe_key.public_key(),
            )
            .unwrap();
        // Swap in a different key: root signature no longer matches.
        let mut rng = StdRng::seed_from_u64(77);
        let other = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        cert.qe_key_bytes = other.public_key().to_bytes();
        assert!(cert.verify(service.root_public_key()).is_err());
    }

    #[test]
    fn certificate_serialization_roundtrip() {
        let (service, platform, qe_key) = setup();
        let challenge = b"c";
        let binding = platform.provisioning_binding(challenge);
        let cert = service
            .certify_attestation_key(
                platform.platform_id(),
                challenge,
                &binding,
                qe_key.public_key(),
            )
            .unwrap();
        let parsed = QeCertificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
        assert!(QeCertificate::from_bytes(&cert.to_bytes()[..10]).is_err());
    }
}
