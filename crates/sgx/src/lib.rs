//! Functional software simulation of Intel SGX.
//!
//! The SinClave mechanism is defined over SGX's *measurement algebra*:
//! `MRENCLAVE` is a SHA-256 over well-defined 64-byte records emitted
//! by the `ECREATE`/`EADD`/`EEXTEND` instructions and finalized by
//! `EINIT` (§2.2.1 of the paper). This crate reimplements that algebra
//! bit-for-bit following the Intel SDM, together with the surrounding
//! machinery a reproduction needs:
//!
//! * [`measurement`] — the `MRENCLAVE` computation, built on the
//!   interruptible SHA-256 so a base enclave hash can be exported.
//! * [`secinfo`] / [`secs`] / [`attributes`] — enclave metadata.
//! * [`sigstruct`] — the RSA-3072-signed enclave signature structure
//!   checked by `EINIT`.
//! * [`verify_cache`] — a bounded, sharded cache of successful
//!   SigStruct verifications (the verifier-side repeat-binary fast
//!   path).
//! * [`launch`] — `EINITTOKEN` and launch control (including FLC).
//! * [`platform`] — a simulated CPU package with fused keys.
//! * [`enclave`] — the enclave life cycle: builder (the *starter*),
//!   initialized enclaves, `EREPORT`.
//! * [`report`] / [`quote`] / [`attestation`] — local and remote
//!   attestation: reports MAC'd with a platform report key, quotes
//!   signed by a quoting enclave, and the attestation service that
//!   certifies them.
//! * [`sealing`] — `EGETKEY`-style sealing-key derivation.
//!
//! What is *not* simulated: micro-architecture, paging, memory
//! encryption. Confidentiality against the host is enforced by Rust
//! visibility (enclave page content is only reachable through the
//! enclave's entry points), which is sufficient for reproducing the
//! paper's protocol-level attack and defense.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod attributes;
pub mod enclave;
pub mod error;
pub mod launch;
pub mod measurement;
pub mod platform;
pub mod quote;
pub mod report;
pub mod sealing;
pub mod secinfo;
pub mod secs;
pub mod sigstruct;
pub mod verify_cache;

pub use error::SgxError;
pub use measurement::Measurement;

/// Size of an enclave page in bytes.
pub const PAGE_SIZE: usize = 4096;
