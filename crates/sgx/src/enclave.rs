//! Enclave life cycle: construction by the untrusted *starter*,
//! initialization (`EINIT`), and the initialized enclave's hardware
//! interface (`EREPORT`, `EGETKEY`, memory).
//!
//! The starter is **not** part of the TCB (§2.2.1): it may add any
//! pages it likes — including SinClave's instance page, which is added
//! by system software during construction (§4.4) — and `EINIT` only
//! checks that the result matches a validly signed SigStruct.

use crate::attributes::Attributes;
use crate::error::SgxError;
use crate::launch::{EinitToken, LaunchControl};
use crate::measurement::{Measurement, MeasurementBuilder};
use crate::platform::Platform;
use crate::report::{Report, ReportBody, ReportData, TargetInfo};
use crate::secinfo::SecInfo;
use crate::secs::Secs;
use crate::sigstruct::SigStruct;
use crate::PAGE_SIZE;
use sinclave_crypto::hmac;
use sinclave_crypto::sha256::{Digest, Sha256State};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Page content, with an all-zeros fast path.
///
/// Heap enclaves of the paper's Fig. 8 reach 2 GiB; zeroed unmeasured
/// pages are represented without backing storage until first write
/// (what real EPC zeroing + demand paging amounts to for the
/// simulation's memory footprint).
#[derive(Clone)]
pub enum PageContent {
    /// All zeros, no backing allocation.
    Zero,
    /// Materialized bytes.
    Data(Box<[u8; PAGE_SIZE]>),
}

impl PageContent {
    fn from_bytes(content: &[u8; PAGE_SIZE]) -> Self {
        if content.iter().all(|&b| b == 0) {
            PageContent::Zero
        } else {
            PageContent::Data(Box::new(*content))
        }
    }

    fn slice(&self, range: std::ops::Range<usize>) -> std::borrow::Cow<'_, [u8]> {
        match self {
            PageContent::Zero => std::borrow::Cow::Owned(vec![0u8; range.len()]),
            PageContent::Data(data) => std::borrow::Cow::Borrowed(&data[range]),
        }
    }

    fn materialize(&mut self) -> &mut [u8; PAGE_SIZE] {
        if let PageContent::Zero = self {
            *self = PageContent::Data(Box::new([0u8; PAGE_SIZE]));
        }
        match self {
            PageContent::Data(data) => data,
            PageContent::Zero => unreachable!("materialized above"),
        }
    }
}

/// One enclave page: content plus security info.
#[derive(Clone)]
pub struct Page {
    /// Page content (4 KiB, possibly an unmaterialized zero page).
    pub content: PageContent,
    /// Page type and permissions.
    pub secinfo: SecInfo,
    /// Whether the content was measured (`EEXTEND`ed).
    pub measured: bool,
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("secinfo", &self.secinfo)
            .field("measured", &self.measured)
            .field("zero", &matches!(self.content, PageContent::Zero))
            .finish()
    }
}

/// The *starter*: builds an enclave page by page, then initializes it.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rand::SeedableRng;
/// use sinclave_sgx::enclave::EnclaveBuilder;
/// use sinclave_sgx::attributes::Attributes;
/// use sinclave_sgx::secinfo::SecInfo;
/// use sinclave_sgx::platform::Platform;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let platform = Arc::new(Platform::new(&mut rng));
/// let mut builder = EnclaveBuilder::new(platform, 0x10000, Attributes::production());
/// builder.add_bytes(0, b"enclave code", SecInfo::code(), true).unwrap();
/// let mrenclave = builder.current_measurement();
/// assert_eq!(mrenclave.as_bytes().len(), 32);
/// ```
pub struct EnclaveBuilder {
    platform: Arc<Platform>,
    secs: Secs,
    measurement: MeasurementBuilder,
    pages: BTreeMap<u64, Page>,
}

impl fmt::Debug for EnclaveBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnclaveBuilder")
            .field("size", &self.secs.size)
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl EnclaveBuilder {
    /// Default SSA frame size in pages.
    pub const SSA_FRAME_SIZE: u32 = 1;

    /// `ECREATE`: starts construction of an enclave of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not page-aligned (see [`Secs::create`]).
    #[must_use]
    pub fn new(platform: Arc<Platform>, size: u64, attributes: Attributes) -> Self {
        let secs = Secs::create(size, 0x7000_0000_0000, Self::SSA_FRAME_SIZE, attributes);
        let measurement = MeasurementBuilder::ecreate(Self::SSA_FRAME_SIZE, size);
        EnclaveBuilder { platform, secs, measurement, pages: BTreeMap::new() }
    }

    /// `EADD` (+ optional `EEXTEND`s): adds one page.
    ///
    /// # Errors
    ///
    /// * [`SgxError::InvalidPageOffset`] — unaligned/out-of-range
    ///   offset, or the offset is already populated.
    /// * [`SgxError::OutOfEpc`] — platform EPC budget exhausted.
    pub fn add_page(
        &mut self,
        offset: u64,
        content: &[u8; PAGE_SIZE],
        secinfo: SecInfo,
        measure: bool,
    ) -> Result<(), SgxError> {
        if self.pages.contains_key(&offset) {
            return Err(SgxError::InvalidPageOffset { offset });
        }
        if !self.platform.reserve_epc(1) {
            return Err(SgxError::OutOfEpc);
        }
        if let Err(e) = self.measurement.add_page(offset, content, secinfo, measure) {
            self.platform.release_epc(1);
            return Err(e);
        }
        self.pages.insert(
            offset,
            Page { content: PageContent::from_bytes(content), secinfo, measured: measure },
        );
        Ok(())
    }

    /// Adds arbitrary bytes starting at `offset`, split into pages and
    /// zero-padded to the page boundary.
    ///
    /// # Errors
    ///
    /// Same as [`EnclaveBuilder::add_page`].
    pub fn add_bytes(
        &mut self,
        offset: u64,
        data: &[u8],
        secinfo: SecInfo,
        measure: bool,
    ) -> Result<(), SgxError> {
        for (i, chunk) in data.chunks(PAGE_SIZE).enumerate() {
            let mut page = [0u8; PAGE_SIZE];
            page[..chunk.len()].copy_from_slice(chunk);
            self.add_page(offset + (i * PAGE_SIZE) as u64, &page, secinfo, measure)?;
        }
        Ok(())
    }

    /// Adds `pages` zeroed, unmeasured read-write pages (heap) at
    /// `offset`.
    ///
    /// # Errors
    ///
    /// Same as [`EnclaveBuilder::add_page`].
    pub fn add_heap(&mut self, offset: u64, pages: u64) -> Result<(), SgxError> {
        let zero = [0u8; PAGE_SIZE];
        for i in 0..pages {
            self.add_page(offset + i * PAGE_SIZE as u64, &zero, SecInfo::data(), false)?;
        }
        Ok(())
    }

    /// The enclave size declared at `ECREATE`.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.secs.size
    }

    /// Number of pages added so far.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The measurement the enclave would have if finalized now —
    /// used by signing tools to compute the expected `MRENCLAVE`.
    #[must_use]
    pub fn current_measurement(&self) -> Measurement {
        self.measurement.clone().finalize()
    }

    /// Exports the interruptible measurement state — the SinClave
    /// **base enclave hash** of the construction so far.
    #[must_use]
    pub fn measurement_state(&self) -> Sha256State {
        self.measurement.export_state()
    }

    /// `EINIT`: verifies the SigStruct, compares the measurement,
    /// enforces launch control, and locks the enclave.
    ///
    /// # Errors
    ///
    /// * [`SgxError::SigStructInvalid`] — bad signature.
    /// * [`SgxError::MeasurementMismatch`] — constructed enclave does
    ///   not match the SigStruct.
    /// * [`SgxError::AttributesRejected`] — attributes fail the mask.
    /// * [`SgxError::LaunchDenied`] — launch policy rejected it.
    pub fn einit(
        self,
        sigstruct: &SigStruct,
        token: Option<&EinitToken>,
        launch: &LaunchControl,
    ) -> Result<Enclave, SgxError> {
        sigstruct.verify()?;

        let measured = self.measurement.clone().finalize();
        if measured != sigstruct.body().enclave_hash {
            // EINIT failing releases the EPC pages again.
            self.platform.release_epc(self.pages.len() as u64);
            return Err(SgxError::MeasurementMismatch {
                measured: measured.to_hex(),
                expected: sigstruct.body().enclave_hash.to_hex(),
            });
        }
        if !self
            .secs
            .attributes
            .matches_masked(&sigstruct.body().attributes, &sigstruct.body().attributes_mask)
        {
            self.platform.release_epc(self.pages.len() as u64);
            return Err(SgxError::AttributesRejected);
        }

        let mrsigner = sigstruct.mrsigner();
        match launch {
            LaunchControl::Flexible => {}
            LaunchControl::TokenRequired { whitelist } => {
                if self.secs.attributes.is_debug() || whitelist.contains(&mrsigner) {
                    // Debug enclaves and whitelisted signers may launch
                    // without a token in this model.
                } else {
                    let token =
                        token.ok_or(SgxError::LaunchDenied { reason: "einittoken required" })?;
                    token.validate(&self.platform, &measured, &mrsigner, &self.secs.attributes)?;
                }
            }
        }

        let mut secs = self.secs;
        secs.mrenclave = Some(measured);
        secs.mrsigner = Some(mrsigner);
        secs.isv_prod_id = sigstruct.body().isv_prod_id;
        secs.isv_svn = sigstruct.body().isv_svn;
        self.platform.note_enclave_created();

        Ok(Enclave { platform: self.platform, secs, pages: self.pages })
    }
}

/// An initialized enclave.
///
/// Methods on this type model operations performed *by code running
/// inside* the enclave (memory access, `EREPORT`, `EGETKEY`). The
/// simulation does not mechanically prevent the host from calling
/// them; the threat-model discipline — hosts only interact via entry
/// points — is maintained by the runtime and attack crates, mirroring
/// how the paper's attack succeeds *without* violating SGX.
pub struct Enclave {
    platform: Arc<Platform>,
    secs: Secs,
    pages: BTreeMap<u64, Page>,
}

impl fmt::Debug for Enclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Enclave")
            .field("mrenclave", &self.mrenclave())
            .field("pages", &self.pages.len())
            .field("debug", &self.secs.attributes.is_debug())
            .finish()
    }
}

impl Drop for Enclave {
    fn drop(&mut self) {
        self.platform.release_epc(self.pages.len() as u64);
    }
}

impl Enclave {
    /// The enclave's measured identity.
    ///
    /// # Panics
    ///
    /// Never panics: an `Enclave` only exists after `EINIT`.
    #[must_use]
    pub fn mrenclave(&self) -> Measurement {
        self.secs.mrenclave.expect("initialized")
    }

    /// The enclave's signer identity.
    #[must_use]
    pub fn mrsigner(&self) -> Digest {
        self.secs.mrsigner.expect("initialized")
    }

    /// The enclave's attributes.
    #[must_use]
    pub fn attributes(&self) -> Attributes {
        self.secs.attributes
    }

    /// Signer-assigned product id.
    #[must_use]
    pub fn isv_prod_id(&self) -> u16 {
        self.secs.isv_prod_id
    }

    /// Signer-assigned security version.
    #[must_use]
    pub fn isv_svn(&self) -> u16 {
        self.secs.isv_svn
    }

    /// The platform this enclave runs on.
    #[must_use]
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Target info other enclaves need to `EREPORT` toward this one.
    #[must_use]
    pub fn target_info(&self) -> TargetInfo {
        TargetInfo { mrenclave: self.mrenclave(), attributes: self.secs.attributes }
    }

    /// Reads enclave memory (in-enclave access).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::InvalidPageOffset`] when the range touches
    /// unmapped pages.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, SgxError> {
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let page_base = pos - pos % PAGE_SIZE as u64;
            let page =
                self.pages.get(&page_base).ok_or(SgxError::InvalidPageOffset { offset: pos })?;
            let in_page = (pos - page_base) as usize;
            let take = ((end - pos) as usize).min(PAGE_SIZE - in_page);
            out.extend_from_slice(&page.content.slice(in_page..in_page + take));
            pos += take as u64;
        }
        Ok(out)
    }

    /// Writes enclave memory (in-enclave access). Only writable pages
    /// accept writes.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::InvalidPageOffset`] for unmapped ranges and
    /// [`SgxError::InvalidLifecycle`] for read-only pages.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), SgxError> {
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let page_base = pos - pos % PAGE_SIZE as u64;
            let page = self
                .pages
                .get_mut(&page_base)
                .ok_or(SgxError::InvalidPageOffset { offset: pos })?;
            if page.secinfo.perms & crate::secinfo::PERM_W == 0 {
                return Err(SgxError::InvalidLifecycle { operation: "write to read-only page" });
            }
            let in_page = (pos - page_base) as usize;
            let take = remaining.len().min(PAGE_SIZE - in_page);
            page.content.materialize()[in_page..in_page + take].copy_from_slice(&remaining[..take]);
            pos += take as u64;
            remaining = &remaining[take..];
        }
        Ok(())
    }

    /// `EREPORT`: creates a report about this enclave for `target`.
    ///
    /// The MAC is keyed so only the target enclave (on this platform)
    /// can verify it. The `report_data` is entirely caller-controlled —
    /// the paper's attack exploits precisely this (§3.2).
    #[must_use]
    pub fn ereport(&self, target: &TargetInfo, report_data: ReportData) -> Report {
        let body = ReportBody {
            cpu_svn: self.platform.cpu_svn(),
            mrenclave: self.mrenclave(),
            mrsigner: self.mrsigner(),
            attributes: self.secs.attributes,
            isv_prod_id: self.secs.isv_prod_id,
            isv_svn: self.secs.isv_svn,
            report_data,
        };
        let key_id = self.platform.next_key_id();
        let key = self.platform.report_key(&target.mrenclave);
        let mut mac_input = body.to_bytes();
        mac_input.extend_from_slice(&key_id);
        let mac = hmac::hmac(&key, &mac_input).to_bytes();
        Report { body, key_id, mac }
    }

    /// Local attestation: this enclave verifies a report that was
    /// targeted at it.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ReportMacInvalid`] if the MAC does not
    /// verify under this enclave's report key.
    pub fn verify_report(&self, report: &Report) -> Result<ReportBody, SgxError> {
        let key = self.platform.report_key(&self.mrenclave());
        if !hmac::verify(&key, &report.mac_input(), &report.mac) {
            return Err(SgxError::ReportMacInvalid);
        }
        Ok(report.body.clone())
    }

    /// Number of pages in the enclave.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigstruct::SigStructBody;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sinclave_crypto::rsa::RsaPrivateKey;

    fn platform(seed: u64) -> Arc<Platform> {
        Arc::new(Platform::new(&mut StdRng::seed_from_u64(seed)))
    }

    fn signer(seed: u64) -> RsaPrivateKey {
        RsaPrivateKey::generate(&mut StdRng::seed_from_u64(seed), 1024).unwrap()
    }

    fn builder(platform: &Arc<Platform>) -> EnclaveBuilder {
        let mut b = EnclaveBuilder::new(platform.clone(), 0x40000, Attributes::production());
        b.add_bytes(0, b"program code", SecInfo::code(), true).unwrap();
        b.add_heap(0x10000, 4).unwrap();
        b
    }

    fn sigstruct_for(b: &EnclaveBuilder, key: &RsaPrivateKey) -> SigStruct {
        SigStruct::sign(
            SigStructBody {
                enclave_hash: b.current_measurement(),
                attributes: Attributes::production(),
                attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
                isv_prod_id: 7,
                isv_svn: 3,
                date: 20230101,
                vendor: 0,
            },
            key,
        )
        .unwrap()
    }

    #[test]
    fn build_and_initialize() {
        let p = platform(1);
        let key = signer(1);
        let b = builder(&p);
        let ss = sigstruct_for(&b, &key);
        let enclave = b.einit(&ss, None, &LaunchControl::Flexible).unwrap();
        assert_eq!(enclave.mrenclave(), ss.body().enclave_hash);
        assert_eq!(enclave.mrsigner(), key.public_key().fingerprint());
        assert_eq!(enclave.isv_prod_id(), 7);
        assert_eq!(enclave.isv_svn(), 3);
        assert_eq!(p.enclaves_created(), 1);
    }

    #[test]
    fn einit_rejects_wrong_measurement() {
        let p = platform(2);
        let key = signer(2);
        let b = builder(&p);
        let ss = sigstruct_for(&b, &key);
        // Tamper with the enclave after signing.
        let mut b2 = builder(&p);
        b2.add_bytes(0x2000, b"malicious extra page", SecInfo::code(), true).unwrap();
        assert!(matches!(
            b2.einit(&ss, None, &LaunchControl::Flexible),
            Err(SgxError::MeasurementMismatch { .. })
        ));
    }

    #[test]
    fn einit_rejects_attribute_violation() {
        let p = platform(3);
        let key = signer(3);
        // Builder in debug mode, SigStruct demands production.
        let mut b = EnclaveBuilder::new(p, 0x40000, Attributes::debug());
        b.add_bytes(0, b"program code", SecInfo::code(), true).unwrap();
        b.add_heap(0x10000, 4).unwrap();
        let ss = sigstruct_for(&b, &key);
        assert_eq!(
            b.einit(&ss, None, &LaunchControl::Flexible).unwrap_err(),
            SgxError::AttributesRejected
        );
    }

    #[test]
    fn launch_control_token_flow() {
        use crate::launch::LaunchEnclave;
        let p = platform(4);
        let key = signer(4);
        let mrsigner = key.public_key().fingerprint();

        // Not whitelisted, no token: denied.
        let b = builder(&p);
        let ss = sigstruct_for(&b, &key);
        let lc = LaunchControl::TokenRequired { whitelist: vec![] };
        assert!(matches!(builder(&p).einit(&ss, None, &lc), Err(SgxError::LaunchDenied { .. })));

        // With a token from the launch enclave (whitelisting the signer).
        let le = LaunchEnclave::new(p.clone(), vec![mrsigner]);
        let token =
            le.issue_token(&ss.body().enclave_hash, &mrsigner, &Attributes::production()).unwrap();
        let enclave = builder(&p).einit(&ss, Some(&token), &lc).unwrap();
        assert_eq!(enclave.mrsigner(), mrsigner);

        // Whitelisted signer launches without a token.
        let lc2 = LaunchControl::TokenRequired { whitelist: vec![mrsigner] };
        assert!(builder(&p).einit(&ss, None, &lc2).is_ok());
    }

    #[test]
    fn memory_read_write_semantics() {
        let p = platform(5);
        let key = signer(5);
        let b = builder(&p);
        let ss = sigstruct_for(&b, &key);
        let mut enclave = b.einit(&ss, None, &LaunchControl::Flexible).unwrap();

        // Heap is writable and readable across page boundaries.
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        enclave.write(0x10000, &data).unwrap();
        assert_eq!(enclave.read(0x10000, 5000).unwrap(), data);
        // Offset reads work.
        assert_eq!(enclave.read(0x10001, 10).unwrap(), data[1..11]);

        // Code pages are read-only.
        assert!(matches!(enclave.write(0, b"overwrite"), Err(SgxError::InvalidLifecycle { .. })));
        // Unmapped access fails.
        assert!(enclave.read(0x3f000, 16).is_err());
    }

    #[test]
    fn report_roundtrip_and_tamper_detection() {
        let p = platform(6);
        let key = signer(6);

        let b = builder(&p);
        let ss = sigstruct_for(&b, &key);
        let reporter = b.einit(&ss, None, &LaunchControl::Flexible).unwrap();

        // Second enclave acts as the verifier target.
        let mut b2 = EnclaveBuilder::new(p.clone(), 0x10000, Attributes::production());
        b2.add_bytes(0, b"target", SecInfo::code(), true).unwrap();
        let ss2 = sigstruct_for(&b2, &key);
        let target = b2.einit(&ss2, None, &LaunchControl::Flexible).unwrap();

        let data = ReportData::from_slice(b"channel binding");
        let report = reporter.ereport(&target.target_info(), data);
        let body = target.verify_report(&report).unwrap();
        assert_eq!(body.mrenclave, reporter.mrenclave());
        assert_eq!(body.report_data, data);

        // Tampered report data fails the MAC.
        let mut forged = report.clone();
        forged.body.report_data = ReportData::from_slice(b"attacker value");
        assert_eq!(target.verify_report(&forged), Err(SgxError::ReportMacInvalid));

        // A report for a different target fails too.
        let misdirected = reporter.ereport(&reporter.target_info(), data);
        assert_eq!(target.verify_report(&misdirected), Err(SgxError::ReportMacInvalid));
    }

    #[test]
    fn epc_accounting_via_builder_and_drop() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Arc::new(Platform::with_epc_pages(&mut rng, 8));
        let key = signer(7);
        let mut b = EnclaveBuilder::new(p.clone(), 0x40000, Attributes::production());
        b.add_bytes(0, b"x", SecInfo::code(), true).unwrap();
        b.add_heap(0x10000, 7).unwrap();
        assert_eq!(b.add_heap(0x30000, 1).unwrap_err(), SgxError::OutOfEpc);
        let ss = sigstruct_for(&b, &key);
        let enclave = b.einit(&ss, None, &LaunchControl::Flexible).unwrap();
        assert_eq!(p.epc_used_pages(), 8);
        drop(enclave);
        assert_eq!(p.epc_used_pages(), 0);
    }

    #[test]
    fn duplicate_page_rejected() {
        let p = platform(8);
        let mut b = EnclaveBuilder::new(p, 0x10000, Attributes::production());
        let page = [0u8; PAGE_SIZE];
        b.add_page(0, &page, SecInfo::code(), true).unwrap();
        assert!(matches!(
            b.add_page(0, &page, SecInfo::code(), true),
            Err(SgxError::InvalidPageOffset { .. })
        ));
    }

    #[test]
    fn identical_builds_identical_mrenclave_different_platforms() {
        // MRENCLAVE is platform-independent: same construction on two
        // machines yields the same measurement (that is what makes
        // remote attestation meaningful).
        let b1 = builder(&platform(9));
        let b2 = builder(&platform(10));
        assert_eq!(b1.current_measurement(), b2.current_measurement());
    }
}
