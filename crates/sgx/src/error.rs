//! Error type for the simulated SGX platform.

use std::error::Error;
use std::fmt;

/// Errors raised by simulated SGX instructions and services.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// `EINIT`: the SigStruct's enclave hash does not match the
    /// measured `MRENCLAVE`.
    MeasurementMismatch {
        /// Hex of the measured value.
        measured: String,
        /// Hex of the value the SigStruct expects.
        expected: String,
    },
    /// `EINIT`: the SigStruct signature is invalid.
    SigStructInvalid,
    /// `EINIT`: the enclave attributes are not allowed by the
    /// SigStruct's attribute mask.
    AttributesRejected,
    /// `EINIT`: launch control rejected the enclave.
    LaunchDenied {
        /// Human-readable reason from the launch-control policy.
        reason: &'static str,
    },
    /// `EADD`: page offset outside the enclave range or misaligned.
    InvalidPageOffset {
        /// The offending offset.
        offset: u64,
    },
    /// `EADD`/`EEXTEND` after `EINIT`, or entry before `EINIT`.
    InvalidLifecycle {
        /// What was attempted.
        operation: &'static str,
    },
    /// A report MAC failed to verify.
    ReportMacInvalid,
    /// A quote signature failed to verify or the attestation key is
    /// not certified.
    QuoteInvalid {
        /// Why the quote was rejected.
        reason: &'static str,
    },
    /// The enclave is out of EPC memory (size budget exceeded).
    OutOfEpc,
    /// Structure (de)serialization failed.
    Malformed {
        /// What was being parsed.
        context: &'static str,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::MeasurementMismatch { measured, expected } => write!(
                f,
                "enclave measurement mismatch: measured {measured}, sigstruct expects {expected}"
            ),
            SgxError::SigStructInvalid => write!(f, "sigstruct signature invalid"),
            SgxError::AttributesRejected => {
                write!(f, "enclave attributes rejected by sigstruct mask")
            }
            SgxError::LaunchDenied { reason } => write!(f, "launch denied: {reason}"),
            SgxError::InvalidPageOffset { offset } => {
                write!(f, "invalid enclave page offset {offset:#x}")
            }
            SgxError::InvalidLifecycle { operation } => {
                write!(f, "operation not allowed in current enclave state: {operation}")
            }
            SgxError::ReportMacInvalid => write!(f, "report mac invalid"),
            SgxError::QuoteInvalid { reason } => write!(f, "quote invalid: {reason}"),
            SgxError::OutOfEpc => write!(f, "enclave page cache exhausted"),
            SgxError::Malformed { context } => write!(f, "malformed {context}"),
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SgxError::MeasurementMismatch { measured: "aa".into(), expected: "bb".into() };
        let s = e.to_string();
        assert!(s.contains("aa") && s.contains("bb"));
        assert!(SgxError::LaunchDenied { reason: "not whitelisted" }
            .to_string()
            .contains("not whitelisted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }
}
