//! A simulated SGX-capable CPU package.
//!
//! Real SGX fuses two secrets into the die at manufacturing (§2.2.3):
//! the *seal secret* (known only to the processor) and the
//! *provisioning secret* (also stored by Intel's provisioning service).
//! This module models a CPU package holding both, from which all
//! platform keys — report keys, seal keys, launch keys — are derived.
//! Key derivations are `pub(crate)`: only the in-crate primitives that
//! model hardware (enclaves, the quoting enclave, launch control) can
//! reach them, mirroring how `EGETKEY`/`EREPORT` gate access on real
//! hardware.

use crate::measurement::Measurement;
use parking_lot::Mutex;
use rand::RngCore;
use sinclave_crypto::hkdf;
use sinclave_crypto::sha256::{self, Digest};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Length of the CPU security version number field.
pub const CPU_SVN_LEN: usize = 16;

/// A simulated CPU package with SGX support.
///
/// Create one per simulated machine and share it via `Arc`; enclaves,
/// the quoting enclave and the launch enclave all hold a reference to
/// the platform they run on.
pub struct Platform {
    platform_id: [u8; 16],
    cpu_svn: [u8; CPU_SVN_LEN],
    root_seal_secret: [u8; 32],
    root_provisioning_secret: [u8; 32],
    /// Total EPC budget in pages, shared by all enclaves on the
    /// platform (coarse model of the enclave page cache).
    epc_total_pages: u64,
    epc_used_pages: AtomicU64,
    /// Monotonic counter for report key ids.
    key_id_counter: AtomicU64,
    /// Enclaves created on this platform (statistics only).
    enclaves_created: Mutex<u64>,
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("platform_id", &hex16(&self.platform_id))
            .field("epc_total_pages", &self.epc_total_pages)
            .field("epc_used_pages", &self.epc_used_pages.load(Ordering::Relaxed))
            .finish()
    }
}

fn hex16(b: &[u8; 16]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

impl Platform {
    /// Default EPC size: 128 MiB in pages, the classic SGX1 budget.
    pub const DEFAULT_EPC_PAGES: u64 = 128 * 1024 * 1024 / crate::PAGE_SIZE as u64;

    /// Manufactures a platform with random fused secrets.
    #[must_use]
    pub fn new<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut platform_id = [0u8; 16];
        rng.fill_bytes(&mut platform_id);
        let mut cpu_svn = [0u8; CPU_SVN_LEN];
        cpu_svn[0] = 1;
        let mut root_seal_secret = [0u8; 32];
        rng.fill_bytes(&mut root_seal_secret);
        let mut root_provisioning_secret = [0u8; 32];
        rng.fill_bytes(&mut root_provisioning_secret);
        Platform {
            platform_id,
            cpu_svn,
            root_seal_secret,
            root_provisioning_secret,
            epc_total_pages: Self::DEFAULT_EPC_PAGES,
            epc_used_pages: AtomicU64::new(0),
            key_id_counter: AtomicU64::new(1),
            enclaves_created: Mutex::new(0),
        }
    }

    /// Manufactures a platform with a custom EPC budget (for the
    /// Fig. 8 heap-size experiments, which exceed 128 MiB).
    #[must_use]
    pub fn with_epc_pages<R: RngCore + ?Sized>(rng: &mut R, epc_total_pages: u64) -> Self {
        let mut p = Platform::new(rng);
        p.epc_total_pages = epc_total_pages;
        p
    }

    /// Stable identifier of this CPU package.
    #[must_use]
    pub fn platform_id(&self) -> [u8; 16] {
        self.platform_id
    }

    /// Current CPU security version number.
    #[must_use]
    pub fn cpu_svn(&self) -> [u8; CPU_SVN_LEN] {
        self.cpu_svn
    }

    /// EPC pages currently in use.
    #[must_use]
    pub fn epc_used_pages(&self) -> u64 {
        self.epc_used_pages.load(Ordering::Relaxed)
    }

    /// Total EPC pages.
    #[must_use]
    pub fn epc_total_pages(&self) -> u64 {
        self.epc_total_pages
    }

    /// Number of enclaves created on this platform so far.
    #[must_use]
    pub fn enclaves_created(&self) -> u64 {
        *self.enclaves_created.lock()
    }

    pub(crate) fn note_enclave_created(&self) {
        *self.enclaves_created.lock() += 1;
    }

    /// Reserves EPC pages; returns false when the budget is exhausted.
    pub(crate) fn reserve_epc(&self, pages: u64) -> bool {
        let mut current = self.epc_used_pages.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(pages) else {
                return false;
            };
            if next > self.epc_total_pages {
                return false;
            }
            match self.epc_used_pages.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Releases EPC pages (called when an enclave is destroyed).
    pub(crate) fn release_epc(&self, pages: u64) {
        self.epc_used_pages.fetch_sub(pages, Ordering::Relaxed);
    }

    /// Fresh key id for a report.
    pub(crate) fn next_key_id(&self) -> [u8; 32] {
        let n = self.key_id_counter.fetch_add(1, Ordering::Relaxed);
        let mut id = [0u8; 32];
        id[..16].copy_from_slice(&self.platform_id);
        id[16..24].copy_from_slice(&n.to_be_bytes());
        id
    }

    /// The report key for a given *target* enclave: only code running
    /// as that target on this platform can re-derive it (models the
    /// `EREPORT`/`EGETKEY` pairing).
    pub(crate) fn report_key(&self, target_mrenclave: &Measurement) -> [u8; 32] {
        hkdf::derive(&self.root_seal_secret, target_mrenclave.as_bytes(), b"sgx-sim/report-key")
    }

    /// The launch key used to MAC `EINITTOKEN`s.
    pub(crate) fn launch_key(&self) -> [u8; 32] {
        hkdf::derive(&self.root_seal_secret, &self.cpu_svn, b"sgx-sim/launch-key")
    }

    /// Seal-key derivation (`EGETKEY` with the SEAL selector).
    pub(crate) fn seal_key(&self, identity: &[u8], isv_svn: u16, label: &[u8]) -> [u8; 32] {
        let mut info = Vec::with_capacity(identity.len() + 2 + label.len());
        info.extend_from_slice(identity);
        info.extend_from_slice(&isv_svn.to_be_bytes());
        info.extend_from_slice(label);
        hkdf::derive(&self.root_seal_secret, &info, b"sgx-sim/seal-key")
    }

    /// A binding value proving knowledge of the provisioning secret —
    /// what the attestation infrastructure checks before certifying an
    /// attestation key for this platform (§2.2.3).
    #[must_use]
    pub fn provisioning_binding(&self, challenge: &[u8]) -> Digest {
        let mut data = Vec::with_capacity(32 + 16 + challenge.len());
        data.extend_from_slice(&self.root_provisioning_secret);
        data.extend_from_slice(&self.platform_id);
        data.extend_from_slice(challenge);
        sha256::digest(&data)
    }

    /// Exports the provisioning secret for registration with the
    /// attestation service — models Intel's key-generation facility
    /// step where the provisioning secret is stored by the service at
    /// manufacturing time. Not reachable by post-manufacturing code.
    #[must_use]
    pub fn manufacturing_record(&self) -> ([u8; 16], [u8; 32]) {
        (self.platform_id, self.root_provisioning_secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sinclave_crypto::sha256::Digest;

    fn platform(seed: u64) -> Platform {
        Platform::new(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn platforms_have_distinct_identities_and_keys() {
        let a = platform(1);
        let b = platform(2);
        assert_ne!(a.platform_id(), b.platform_id());
        let m = Measurement(Digest([7; 32]));
        assert_ne!(a.report_key(&m), b.report_key(&m));
        assert_ne!(a.launch_key(), b.launch_key());
    }

    #[test]
    fn report_key_is_target_specific() {
        let p = platform(3);
        let m1 = Measurement(Digest([1; 32]));
        let m2 = Measurement(Digest([2; 32]));
        assert_ne!(p.report_key(&m1), p.report_key(&m2));
        assert_eq!(p.report_key(&m1), p.report_key(&m1));
    }

    #[test]
    fn seal_key_separates_identity_svn_and_label() {
        let p = platform(4);
        let base = p.seal_key(b"id", 1, b"label");
        assert_ne!(base, p.seal_key(b"id2", 1, b"label"));
        assert_ne!(base, p.seal_key(b"id", 2, b"label"));
        assert_ne!(base, p.seal_key(b"id", 1, b"label2"));
        assert_eq!(base, p.seal_key(b"id", 1, b"label"));
    }

    #[test]
    fn epc_accounting() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Platform::with_epc_pages(&mut rng, 10);
        assert!(p.reserve_epc(6));
        assert!(!p.reserve_epc(5), "over budget");
        assert!(p.reserve_epc(4));
        p.release_epc(10);
        assert_eq!(p.epc_used_pages(), 0);
    }

    #[test]
    fn key_ids_are_unique() {
        let p = platform(6);
        assert_ne!(p.next_key_id(), p.next_key_id());
    }

    #[test]
    fn provisioning_binding_depends_on_challenge() {
        let p = platform(7);
        assert_ne!(p.provisioning_binding(b"a"), p.provisioning_binding(b"b"));
    }
}
