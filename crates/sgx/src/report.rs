//! `EREPORT` structures: report data, target info, report bodies and
//! MAC'd reports (§2.2.3, §3.1).
//!
//! The `reportdata` field is the 64-byte application-controlled value
//! that protocols bind channel keys into — and that the paper's attack
//! hinges on: a *report server* produces reports with arbitrary
//! `reportdata` chosen by the adversary (§3.2).

use crate::attributes::Attributes;
use crate::measurement::Measurement;
use crate::platform::CPU_SVN_LEN;
use sinclave_crypto::sha256::Digest;
use std::fmt;

/// Length of the application-controlled report data field.
pub const REPORT_DATA_LEN: usize = 64;

/// The 64-byte application-controlled field of a report.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ReportData(pub [u8; REPORT_DATA_LEN]);

impl ReportData {
    /// Zero-filled report data.
    #[must_use]
    pub fn zeroed() -> Self {
        ReportData([0u8; REPORT_DATA_LEN])
    }

    /// Builds report data from up to 64 bytes, zero-padding the rest.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 64 bytes.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= REPORT_DATA_LEN, "report data too long");
        let mut out = [0u8; REPORT_DATA_LEN];
        out[..bytes.len()].copy_from_slice(bytes);
        ReportData(out)
    }

    /// Builds report data from a 32-byte digest (the common RA-TLS
    /// pattern: `reportdata = H(channel public key)`).
    #[must_use]
    pub fn from_digest(digest: &Digest) -> Self {
        Self::from_slice(digest.as_bytes())
    }
}

impl fmt::Debug for ReportData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0.iter().take(8).map(|b| format!("{b:02x}")).collect();
        write!(f, "ReportData({hex}…)")
    }
}

impl Default for ReportData {
    fn default() -> Self {
        Self::zeroed()
    }
}

/// Identifies the enclave a report is targeted at (local attestation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetInfo {
    /// Measurement of the target enclave.
    pub mrenclave: Measurement,
    /// Attributes of the target enclave.
    pub attributes: Attributes,
}

/// The signed/MAC'd content of a report or quote.
#[derive(Clone, PartialEq, Eq)]
pub struct ReportBody {
    /// Security version of the CPU.
    pub cpu_svn: [u8; CPU_SVN_LEN],
    /// Measurement of the reporting enclave.
    pub mrenclave: Measurement,
    /// Signer identity of the reporting enclave.
    pub mrsigner: Digest,
    /// Attributes of the reporting enclave.
    pub attributes: Attributes,
    /// Signer-assigned product id.
    pub isv_prod_id: u16,
    /// Signer-assigned security version.
    pub isv_svn: u16,
    /// Application-controlled data.
    pub report_data: ReportData,
}

impl ReportBody {
    /// Deterministic encoding, used for the report MAC and the quote
    /// signature.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 32 + 32 + 16 + 2 + 2 + 64);
        out.extend_from_slice(&self.cpu_svn);
        out.extend_from_slice(self.mrenclave.as_bytes());
        out.extend_from_slice(self.mrsigner.as_bytes());
        out.extend_from_slice(&self.attributes.to_bytes());
        out.extend_from_slice(&self.isv_prod_id.to_le_bytes());
        out.extend_from_slice(&self.isv_svn.to_le_bytes());
        out.extend_from_slice(&self.report_data.0);
        out
    }

    /// Whether the reporting enclave ran in debug mode (a verifier
    /// must reject debug enclaves in production).
    #[must_use]
    pub fn is_debug(&self) -> bool {
        self.attributes.is_debug()
    }

    /// Serialized length of a report body.
    pub const ENCODED_LEN: usize = 16 + 32 + 32 + 16 + 2 + 2 + 64;

    /// Parses the encoding produced by [`ReportBody::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::SgxError::Malformed`] for wrong-length input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::SgxError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(crate::SgxError::Malformed { context: "report body" });
        }
        let mut cpu_svn = [0u8; CPU_SVN_LEN];
        cpu_svn.copy_from_slice(&bytes[..16]);
        let mut mre = [0u8; 32];
        mre.copy_from_slice(&bytes[16..48]);
        let mut mrs = [0u8; 32];
        mrs.copy_from_slice(&bytes[48..80]);
        let attributes = Attributes::from_bytes(bytes[80..96].try_into().expect("16"));
        let isv_prod_id = u16::from_le_bytes(bytes[96..98].try_into().expect("2"));
        let isv_svn = u16::from_le_bytes(bytes[98..100].try_into().expect("2"));
        let mut rd = [0u8; REPORT_DATA_LEN];
        rd.copy_from_slice(&bytes[100..164]);
        Ok(ReportBody {
            cpu_svn,
            mrenclave: Measurement(Digest(mre)),
            mrsigner: Digest(mrs),
            attributes,
            isv_prod_id,
            isv_svn,
            report_data: ReportData(rd),
        })
    }
}

impl fmt::Debug for ReportBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReportBody")
            .field("mrenclave", &self.mrenclave)
            .field("mrsigner", &self.mrsigner.to_hex()[..16].to_owned())
            .field("isv_prod_id", &self.isv_prod_id)
            .field("isv_svn", &self.isv_svn)
            .field("debug", &self.is_debug())
            .field("report_data", &self.report_data)
            .finish()
    }
}

/// A locally-verifiable report: body plus hardware MAC keyed for the
/// target enclave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// The MAC'd content.
    pub body: ReportBody,
    /// Key derivation id used for the MAC.
    pub key_id: [u8; 32],
    /// HMAC-SHA-256 over `body || key_id` under the target's report key.
    pub mac: [u8; 32],
}

impl Report {
    /// The bytes covered by the MAC.
    #[must_use]
    pub fn mac_input(&self) -> Vec<u8> {
        let mut out = self.body.to_bytes();
        out.extend_from_slice(&self.key_id);
        out
    }

    /// Serialized length of a report.
    pub const ENCODED_LEN: usize = ReportBody::ENCODED_LEN + 32 + 32;

    /// Serializes the report (body, key id, MAC).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.body.to_bytes();
        out.extend_from_slice(&self.key_id);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses the encoding from [`Report::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::SgxError::Malformed`] for wrong-length input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::SgxError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(crate::SgxError::Malformed { context: "report" });
        }
        let body = ReportBody::from_bytes(&bytes[..ReportBody::ENCODED_LEN])?;
        let mut key_id = [0u8; 32];
        key_id.copy_from_slice(&bytes[ReportBody::ENCODED_LEN..ReportBody::ENCODED_LEN + 32]);
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[ReportBody::ENCODED_LEN + 32..]);
        Ok(Report { body, key_id, mac })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> ReportBody {
        ReportBody {
            cpu_svn: [1; CPU_SVN_LEN],
            mrenclave: Measurement(Digest([2; 32])),
            mrsigner: Digest([3; 32]),
            attributes: Attributes::production(),
            isv_prod_id: 4,
            isv_svn: 5,
            report_data: ReportData::from_slice(b"hello"),
        }
    }

    #[test]
    fn report_data_padding_and_bounds() {
        let rd = ReportData::from_slice(b"abc");
        assert_eq!(&rd.0[..3], b"abc");
        assert!(rd.0[3..].iter().all(|&b| b == 0));
        assert_eq!(ReportData::from_slice(&[0u8; 64]).0, [0u8; 64]);
    }

    #[test]
    #[should_panic(expected = "report data too long")]
    fn report_data_rejects_overlong() {
        let _ = ReportData::from_slice(&[0u8; 65]);
    }

    #[test]
    fn body_encoding_changes_with_every_field() {
        let reference = body().to_bytes();
        let mut b = body();
        b.mrenclave = Measurement(Digest([9; 32]));
        assert_ne!(b.to_bytes(), reference);
        let mut b = body();
        b.report_data = ReportData::from_slice(b"other");
        assert_ne!(b.to_bytes(), reference);
        let mut b = body();
        b.attributes = Attributes::debug();
        assert_ne!(b.to_bytes(), reference);
        let mut b = body();
        b.isv_svn = 6;
        assert_ne!(b.to_bytes(), reference);
    }

    #[test]
    fn debug_flag_detection() {
        let mut b = body();
        assert!(!b.is_debug());
        b.attributes = Attributes::debug();
        assert!(b.is_debug());
    }

    #[test]
    fn report_serialization_roundtrip() {
        let r = Report { body: body(), key_id: [7; 32], mac: [8; 32] };
        let parsed = Report::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(parsed, r);
        assert!(Report::from_bytes(&r.to_bytes()[..10]).is_err());
        assert_eq!(ReportBody::from_bytes(&body().to_bytes()).unwrap(), body());
    }

    #[test]
    fn from_digest_uses_32_bytes() {
        let d = Digest([0xaa; 32]);
        let rd = ReportData::from_digest(&d);
        assert_eq!(&rd.0[..32], d.as_bytes());
        assert!(rd.0[32..].iter().all(|&b| b == 0));
    }
}
