//! The quoting enclave and remotely-verifiable quotes (§2.2.3, §3.1).
//!
//! The quoting enclave (the *prover* in Fig. 3) locally verifies a
//! report MAC, then signs the report body with its certified
//! attestation key, producing a quote any remote verifier can check
//! against the attestation service's root key — steps (2)–(4) of the
//! paper's protocol diagram.

use crate::attestation::{AttestationService, QeCertificate};
use crate::error::SgxError;
use crate::measurement::Measurement;
use crate::platform::Platform;
use crate::report::{Report, ReportBody, TargetInfo};
use rand::RngCore;
use sinclave_crypto::hmac;
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_crypto::sha256::{self, Digest};
use std::fmt;
use std::sync::Arc;

/// The well-known measurement of the quoting enclave.
///
/// Real platforms ship a fixed Intel-signed QE whose identity is
/// public; here it is a constant derived from a version string.
#[must_use]
pub fn qe_measurement() -> Measurement {
    Measurement(sha256::digest(b"sgx-sim quoting enclave v1"))
}

/// A remotely-verifiable quote: a report body signed by a certified
/// attestation key.
#[derive(Clone, Debug)]
pub struct Quote {
    /// The attested enclave's report body.
    pub body: ReportBody,
    /// Certificate chain for the signing key.
    pub certificate: QeCertificate,
    /// Attestation-key signature over the body and nonce.
    pub signature: Vec<u8>,
    /// Verifier-chosen freshness nonce included under the signature.
    pub nonce: [u8; 16],
}

impl Quote {
    fn signed_bytes(body: &ReportBody, nonce: &[u8; 16]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ReportBody::ENCODED_LEN + 24);
        out.extend_from_slice(b"SGXQUOTE");
        out.extend_from_slice(&body.to_bytes());
        out.extend_from_slice(nonce);
        out
    }

    /// Verifies the quote against the attestation service root key and
    /// the expected nonce; returns the attested report body.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteInvalid`] on any failure: bad
    /// certificate, bad signature, or nonce mismatch.
    pub fn verify(
        &self,
        root: &RsaPublicKey,
        expected_nonce: &[u8; 16],
    ) -> Result<&ReportBody, SgxError> {
        if &self.nonce != expected_nonce {
            return Err(SgxError::QuoteInvalid { reason: "nonce mismatch" });
        }
        let qe_key = self.certificate.verify(root)?;
        qe_key
            .verify(&Self::signed_bytes(&self.body, &self.nonce), &self.signature)
            .map_err(|_| SgxError::QuoteInvalid { reason: "quote signature invalid" })?;
        Ok(&self.body)
    }

    /// Serializes the quote for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.body.to_bytes();
        let cert = self.certificate.to_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&(cert.len() as u32).to_be_bytes());
        out.extend_from_slice(&cert);
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out.extend_from_slice(&self.nonce);
        out
    }

    /// Parses a quote serialized by [`Quote::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Malformed`] on framing errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let malformed = SgxError::Malformed { context: "quote" };
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], SgxError> {
            if cursor.len() < n {
                return Err(SgxError::Malformed { context: "quote" });
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        let mut cursor = bytes;
        let body_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let body = ReportBody::from_bytes(take(&mut cursor, body_len)?)?;
        let cert_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let certificate = QeCertificate::from_bytes(take(&mut cursor, cert_len)?)?;
        let sig_len = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("4")) as usize;
        let signature = take(&mut cursor, sig_len)?.to_vec();
        let nonce_bytes = take(&mut cursor, 16)?;
        if !cursor.is_empty() {
            return Err(malformed);
        }
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(nonce_bytes);
        Ok(Quote { body, certificate, signature, nonce })
    }
}

/// The quoting enclave of one platform.
pub struct QuotingEnclave {
    platform: Arc<Platform>,
    key: RsaPrivateKey,
    certificate: QeCertificate,
}

impl fmt::Debug for QuotingEnclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuotingEnclave").field("certificate", &self.certificate).finish()
    }
}

impl QuotingEnclave {
    /// Provisions a quoting enclave: generates an attestation key and
    /// has the service certify it after a provisioning-secret proof.
    ///
    /// # Errors
    ///
    /// Propagates certification failures (unregistered platform etc.).
    pub fn provision<R: RngCore + ?Sized>(
        platform: Arc<Platform>,
        service: &AttestationService,
        rng: &mut R,
        key_bits: usize,
    ) -> Result<Self, SgxError> {
        let key = RsaPrivateKey::generate(rng, key_bits)
            .map_err(|_| SgxError::Malformed { context: "attestation key" })?;
        let challenge: Digest = key.public_key().fingerprint();
        let binding = platform.provisioning_binding(challenge.as_bytes());
        let certificate = service.certify_attestation_key(
            platform.platform_id(),
            challenge.as_bytes(),
            &binding,
            key.public_key(),
        )?;
        Ok(QuotingEnclave { platform, key, certificate })
    }

    /// Target info enclaves use to `EREPORT` toward this QE.
    #[must_use]
    pub fn target_info(&self) -> TargetInfo {
        TargetInfo {
            mrenclave: qe_measurement(),
            attributes: crate::attributes::Attributes::production(),
        }
    }

    /// Turns a locally-verified report into a quote (steps (2)–(3) of
    /// Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ReportMacInvalid`] if the report was not
    /// targeted at this QE on this platform.
    pub fn quote(&self, report: &Report, nonce: [u8; 16]) -> Result<Quote, SgxError> {
        // Local attestation: the QE derives its own report key.
        let key = self.platform.report_key(&qe_measurement());
        if !hmac::verify(&key, &report.mac_input(), &report.mac) {
            return Err(SgxError::ReportMacInvalid);
        }
        let signature = self
            .key
            .sign(&Quote::signed_bytes(&report.body, &nonce))
            .map_err(|_| SgxError::Malformed { context: "quote signing" })?;
        Ok(Quote {
            body: report.body.clone(),
            certificate: self.certificate.clone(),
            signature,
            nonce,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use crate::enclave::EnclaveBuilder;
    use crate::launch::LaunchControl;
    use crate::report::ReportData;
    use crate::secinfo::SecInfo;
    use crate::sigstruct::{SigStruct, SigStructBody};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        service: AttestationService,
        qe: QuotingEnclave,
        enclave: crate::enclave::Enclave,
    }

    fn world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, 1024).unwrap();
        let platform = Arc::new(Platform::new(&mut rng));
        service.register_platform(platform.manufacturing_record());
        let qe = QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap();

        let signer = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let mut b = EnclaveBuilder::new(platform, 0x10000, Attributes::production());
        b.add_bytes(0, b"app", SecInfo::code(), true).unwrap();
        let ss = SigStruct::sign(
            SigStructBody {
                enclave_hash: b.current_measurement(),
                attributes: Attributes::production(),
                attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
                isv_prod_id: 1,
                isv_svn: 1,
                date: 20230101,
                vendor: 0,
            },
            &signer,
        )
        .unwrap();
        let enclave = b.einit(&ss, None, &LaunchControl::Flexible).unwrap();
        World { service, qe, enclave }
    }

    #[test]
    fn full_remote_attestation_flow() {
        let w = world(1);
        let nonce = [7u8; 16];
        let report = w.enclave.ereport(&w.qe.target_info(), ReportData::from_slice(b"key binding"));
        let quote = w.qe.quote(&report, nonce).unwrap();
        let body = quote.verify(w.service.root_public_key(), &nonce).unwrap();
        assert_eq!(body.mrenclave, w.enclave.mrenclave());
        assert_eq!(&body.report_data.0[..11], b"key binding");
    }

    #[test]
    fn quote_serialization_roundtrip() {
        let w = world(2);
        let nonce = [9u8; 16];
        let report = w.enclave.ereport(&w.qe.target_info(), ReportData::zeroed());
        let quote = w.qe.quote(&report, nonce).unwrap();
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        parsed.verify(w.service.root_public_key(), &nonce).unwrap();
        assert_eq!(parsed.body, quote.body);
        assert!(Quote::from_bytes(&quote.to_bytes()[..30]).is_err());
    }

    #[test]
    fn qe_rejects_misdirected_report() {
        let w = world(3);
        // Report targeted at the enclave itself, not the QE.
        let report = w.enclave.ereport(&w.enclave.target_info(), ReportData::zeroed());
        assert_eq!(w.qe.quote(&report, [0; 16]).unwrap_err(), SgxError::ReportMacInvalid);
    }

    #[test]
    fn verify_rejects_wrong_nonce() {
        let w = world(4);
        let report = w.enclave.ereport(&w.qe.target_info(), ReportData::zeroed());
        let quote = w.qe.quote(&report, [1; 16]).unwrap();
        assert!(matches!(
            quote.verify(w.service.root_public_key(), &[2; 16]),
            Err(SgxError::QuoteInvalid { reason: "nonce mismatch" })
        ));
    }

    #[test]
    fn verify_rejects_tampered_body() {
        let w = world(5);
        let nonce = [3u8; 16];
        let report = w.enclave.ereport(&w.qe.target_info(), ReportData::zeroed());
        let mut quote = w.qe.quote(&report, nonce).unwrap();
        quote.body.report_data = ReportData::from_slice(b"forged");
        assert!(matches!(
            quote.verify(w.service.root_public_key(), &nonce),
            Err(SgxError::QuoteInvalid { reason: "quote signature invalid" })
        ));
    }

    #[test]
    fn verify_rejects_uncertified_qe() {
        // An adversary with their own key but no service certificate
        // cannot produce acceptable quotes.
        let w = world(6);
        let mut rng = StdRng::seed_from_u64(99);
        let rogue_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let nonce = [4u8; 16];
        let report = w.enclave.ereport(&w.qe.target_info(), ReportData::zeroed());
        let signature = rogue_key.sign(&Quote::signed_bytes(&report.body, &nonce)).unwrap();
        let rogue_quote = Quote {
            body: report.body.clone(),
            certificate: QeCertificate {
                platform_id: [0; 16],
                qe_key_bytes: rogue_key.public_key().to_bytes(),
                signature: vec![0; 128],
            },
            signature,
            nonce,
        };
        assert!(rogue_quote.verify(w.service.root_public_key(), &nonce).is_err());
    }
}
