//! The macro-benchmark workloads of Fig. 9, as synthetic equivalents.
//!
//! The paper measures three real applications end to end (attested
//! start + run): a Python app with an encrypted volume (shortest), an
//! OpenVINO image-classification demo (medium), and PyTorch CIFAR-10
//! training (longest). The *relative* SinClave overhead (1.03 %,
//! 2.49 %, 13.2 %) is the attestation delta amortized over run length
//! — so the faithful substitution is three workloads with the same
//! I/O structure and increasing compute durations.
//!
//! (Paper note: in Fig. 9 the overhead *rises* with the heavier
//! workloads because those experiments also re-run attested restarts;
//! what must hold in any reproduction is simply that the overhead is
//! small single-digit-to-low-double-digit percent and derives entirely
//! from the startup path.)

use crate::exec::SharedVolume;
use crate::image::ProgramImage;
use parking_lot::Mutex;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_fs::Volume;
use std::sync::Arc;

/// A ready-to-run workload: image, volume, and the configuration the
/// verifier should hand out.
pub struct Workload {
    /// Descriptive name matching the paper's Fig. 9 labels.
    pub name: &'static str,
    /// The program image (the "interpreter").
    pub image: ProgramImage,
    /// The application volume.
    pub volume: SharedVolume,
    /// Configuration to store at the verifier.
    pub config: AppConfig,
}

fn volume_with(key_bytes: [u8; 32], files: &[(&str, &[u8])]) -> SharedVolume {
    let key = AeadKey::new(key_bytes);
    let mut vol = Volume::format(&key, "workload");
    for (path, data) in files {
        vol.write_file(&key, path, data).expect("volume write");
    }
    Arc::new(Mutex::new(vol))
}

/// Fig. 9 "Python": a script on an encrypted volume that reads input
/// files, transforms them, and writes results back — I/O heavy, short
/// compute (the SCONE volume demo).
#[must_use]
pub fn python_volume(scale: u64) -> Workload {
    let key = [0x11; 32];
    let entry = format!(
        "read input.csv -> data\n\
         compute mix {scale} -> digest\n\
         concat $data $digest -> out\n\
         write output.bin $out\n\
         print python-done"
    );
    let input: Vec<u8> = (0..32_768u32).map(|i| (i % 251) as u8).collect();
    let volume = volume_with(key, &[("main.py", entry.as_bytes()), ("input.csv", &input)]);
    Workload {
        name: "Python",
        image: ProgramImage::interpreter("python-3.8", 16),
        volume,
        config: AppConfig {
            entry: "main.py".into(),
            volume_key: Some(key),
            env: vec![("PYTHONHASHSEED".into(), "0".into())],
            ..AppConfig::default()
        },
    }
}

/// Fig. 9 "OpenVINO": model load plus a batch of inference passes —
/// medium-length fixed-point matrix pipeline.
#[must_use]
pub fn openvino_inference(batch: u64) -> Workload {
    let key = [0x22; 32];
    let mut entry = String::from("read model.bin -> model\n");
    for i in 0..batch {
        entry.push_str(&format!("compute matmul 160 -> frame{i}\n"));
    }
    entry.push_str("print openvino-done");
    let model = vec![0x5au8; 262_144];
    let volume = volume_with(key, &[("pipeline.ss", entry.as_bytes()), ("model.bin", &model)]);
    Workload {
        name: "OpenVINO",
        image: ProgramImage::interpreter("openvino-2020.1", 64),
        volume,
        config: AppConfig {
            entry: "pipeline.ss".into(),
            volume_key: Some(key),
            args: vec!["--device".into(), "CPU".into()],
            ..AppConfig::default()
        },
    }
}

/// Fig. 9 "PyTorch": dataset load plus training epochs — the longest
/// workload.
#[must_use]
pub fn pytorch_training(epochs: u64) -> Workload {
    let key = [0x33; 32];
    let mut entry = String::from("read cifar10.bin -> dataset\n");
    for e in 0..epochs {
        entry.push_str(&format!("compute train 144 -> epoch{e}\n"));
    }
    entry.push_str("write checkpoint.pt $dataset\nprint pytorch-done");
    let dataset = vec![0xc1u8; 1_048_576];
    let volume = volume_with(key, &[("train.ss", entry.as_bytes()), ("cifar10.bin", &dataset)]);
    Workload {
        name: "PyTorch",
        image: ProgramImage::interpreter("pytorch-1.8", 128),
        volume,
        config: AppConfig {
            entry: "train.ss".into(),
            volume_key: Some(key),
            secrets: vec![("wandb-token".into(), b"training telemetry key".to_vec())],
            ..AppConfig::default()
        },
    }
}

/// All three Fig. 9 workloads at default scales.
#[must_use]
pub fn all_default() -> Vec<Workload> {
    vec![python_volume(8), openvino_inference(12), pytorch_training(6)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecContext};
    use crate::script::Script;
    use sinclave_net::Network;

    fn run(w: &Workload) -> crate::exec::ExecOutcome {
        let key = AeadKey::new(w.config.volume_key.unwrap());
        let entry = w.volume.lock().read_file(&key, &w.config.entry).unwrap();
        let script = Script::parse(std::str::from_utf8(&entry).unwrap()).unwrap();
        let mut ctx = ExecContext::bare(Network::new());
        ctx.config = w.config.clone();
        ctx.volume = Some((w.volume.clone(), key));
        execute(&script, &mut ctx).unwrap()
    }

    #[test]
    fn python_workload_runs_and_writes_output() {
        let w = python_volume(2);
        let out = run(&w);
        assert_eq!(out.stdout.last().unwrap(), "python-done");
        let key = AeadKey::new(w.config.volume_key.unwrap());
        assert!(w.volume.lock().contains(&key, "output.bin").unwrap());
    }

    #[test]
    fn openvino_workload_runs() {
        let w = openvino_inference(2);
        let out = run(&w);
        assert_eq!(out.stdout.last().unwrap(), "openvino-done");
        assert!(out.vars.contains_key("frame1"));
    }

    #[test]
    fn pytorch_workload_runs() {
        let w = pytorch_training(1);
        let out = run(&w);
        assert_eq!(out.stdout.last().unwrap(), "pytorch-done");
        assert!(out.vars.contains_key("epoch0"));
    }

    #[test]
    fn workloads_have_increasing_footprints() {
        let ws = all_default();
        assert_eq!(ws.len(), 3);
        assert!(ws[0].image.heap_pages < ws[1].image.heap_pages);
        assert!(ws[1].image.heap_pages < ws[2].image.heap_pages);
    }
}
