//! Error type for the enclave runtimes.

use std::error::Error;
use std::fmt;

/// Errors raised by runtime startup, attestation and app execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The verifier denied attestation or configuration.
    AttestationDenied {
        /// Reason given by the verifier.
        reason: String,
    },
    /// The instance page pins a different verifier than the one the
    /// channel terminates at — the SinClave identity check fired.
    VerifierIdentityMismatch,
    /// The runtime expected a singleton instance page but found a
    /// common (zeroed) one, or vice versa.
    InstancePageUnexpected {
        /// What the runtime found.
        found: &'static str,
    },
    /// The app volume could not be opened with the provisioned key.
    VolumeRejected,
    /// A script failed to parse.
    ScriptParse {
        /// Line number (1-based).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A script failed at runtime.
    ScriptRuntime {
        /// What went wrong.
        reason: String,
    },
    /// The script exceeded its execution budget.
    StepBudgetExhausted,
    /// The protocol with the verifier derailed.
    ProtocolViolation {
        /// What was expected/received.
        context: &'static str,
    },
    /// An underlying layer failed.
    Sinclave(sinclave::SinclaveError),
    /// SGX failure.
    Sgx(sinclave_sgx::SgxError),
    /// Network failure.
    Net(sinclave_net::NetError),
    /// Filesystem failure.
    Fs(sinclave_fs::FsError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::AttestationDenied { reason } => {
                write!(f, "attestation denied: {reason}")
            }
            RuntimeError::VerifierIdentityMismatch => {
                write!(f, "channel does not terminate at the pinned verifier")
            }
            RuntimeError::InstancePageUnexpected { found } => {
                write!(f, "unexpected instance page state: {found}")
            }
            RuntimeError::VolumeRejected => write!(f, "volume key rejected"),
            RuntimeError::ScriptParse { line, reason } => {
                write!(f, "script parse error at line {line}: {reason}")
            }
            RuntimeError::ScriptRuntime { reason } => write!(f, "script error: {reason}"),
            RuntimeError::StepBudgetExhausted => write!(f, "script step budget exhausted"),
            RuntimeError::ProtocolViolation { context } => {
                write!(f, "protocol violation: {context}")
            }
            RuntimeError::Sinclave(e) => write!(f, "sinclave: {e}"),
            RuntimeError::Sgx(e) => write!(f, "sgx: {e}"),
            RuntimeError::Net(e) => write!(f, "net: {e}"),
            RuntimeError::Fs(e) => write!(f, "fs: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Sinclave(e) => Some(e),
            RuntimeError::Sgx(e) => Some(e),
            RuntimeError::Net(e) => Some(e),
            RuntimeError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sinclave::SinclaveError> for RuntimeError {
    fn from(e: sinclave::SinclaveError) -> Self {
        RuntimeError::Sinclave(e)
    }
}

impl From<sinclave_sgx::SgxError> for RuntimeError {
    fn from(e: sinclave_sgx::SgxError) -> Self {
        RuntimeError::Sgx(e)
    }
}

impl From<sinclave_net::NetError> for RuntimeError {
    fn from(e: sinclave_net::NetError) -> Self {
        RuntimeError::Net(e)
    }
}

impl From<sinclave_fs::FsError> for RuntimeError {
    fn from(e: sinclave_fs::FsError) -> Self {
        RuntimeError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: RuntimeError = sinclave_net::NetError::Timeout.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("net"));
        assert!(RuntimeError::VerifierIdentityMismatch.source().is_none());
    }
}
