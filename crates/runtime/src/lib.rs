//! SCONE-like and SGX-LKL-like enclave runtimes.
//!
//! This crate models the TEE frameworks the paper attacks (§3.3) and
//! hardens (§4): runtimes that run *legacy applications* inside
//! enclaves, transparently attest, fetch configuration from a verifier
//! and mount encrypted volumes.
//!
//! * [`image`] — program images ("binaries"): the measured content of
//!   an application enclave. An image contains the runtime/interpreter
//!   and optionally an embedded entry script; application code usually
//!   lives on an encrypted volume — *outside* the measurement, which
//!   is the paper's attack surface.
//! * [`script`] / [`exec`] — the application model: a small
//!   deterministic scripting language (stand-in for Python/NodeJS)
//!   with dynamic `import`, filesystem access, networking and —
//!   crucially — a `getreport` syscall, mirroring how SCONE "exposes
//!   report generation via C functions to user code" (§3.2).
//! * [`scone`] — the SCONE-like runtime: baseline attestation flow
//!   (vulnerable, §3.3.1) and the SinClave singleton flow (§4.4).
//! * [`lkl`] — the SGX-LKL-like runtime: encrypted disk images and a
//!   one-shot attest-then-configure server flow (vulnerable, §3.3.2),
//!   plus its SinClave hardening.
//! * [`workload`] — the macro-benchmark workloads of Fig. 9 (Python +
//!   encrypted volume, OpenVINO-style inference, PyTorch-style
//!   training) as synthetic equivalents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod image;
pub mod lkl;
pub mod scone;
pub mod script;
pub mod workload;

pub use error::RuntimeError;
pub use image::{ProgramImage, RuntimeFlavor};
