//! The SinScript interpreter — the in-enclave application engine.
//!
//! Executes [`crate::script::Script`]s against a capability context:
//! the provisioned configuration, an optional mounted volume, the
//! network, and a report-generation capability (the `EREPORT` syscall
//! surface that the paper's attack turns into a *report server*).

use crate::error::RuntimeError;
use crate::script::{ComputeKind, Instr, Script, Value};
use parking_lot::Mutex;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::sha256;
use sinclave_fs::Volume;
use sinclave_net::{Connection, Listener, Network};
use sinclave_sgx::enclave::Enclave;
use sinclave_sgx::report::{ReportData, TargetInfo, REPORT_DATA_LEN};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A volume shared between host (which persists it) and enclave
/// runtime (which reads it through its key).
pub type SharedVolume = Arc<Mutex<Volume>>;

/// Report-generation capability available to scripts.
#[derive(Clone)]
pub enum Reporter {
    /// `getreport` is unavailable (plain, non-enclave execution).
    Disabled,
    /// `getreport` produces reports from this enclave toward the
    /// platform's quoting enclave.
    Enclave {
        /// The enclave scripts run inside of.
        enclave: Arc<Enclave>,
        /// Target info of the quoting enclave.
        qe_target: TargetInfo,
    },
}

impl fmt::Debug for Reporter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reporter::Disabled => f.write_str("Reporter::Disabled"),
            Reporter::Enclave { .. } => f.write_str("Reporter::Enclave"),
        }
    }
}

/// Everything a script execution may touch.
pub struct ExecContext {
    /// The provisioned configuration (args, env, secrets).
    pub config: AppConfig,
    /// Mounted application volume, if any.
    pub volume: Option<(SharedVolume, AeadKey)>,
    /// The network.
    pub network: Network,
    /// Report capability.
    pub reporter: Reporter,
    /// Execution budget in interpreter steps.
    pub max_steps: u64,
}

impl ExecContext {
    /// A minimal context without volume, network peers or reports.
    #[must_use]
    pub fn bare(network: Network) -> Self {
        ExecContext {
            config: AppConfig::default(),
            volume: None,
            network,
            reporter: Reporter::Disabled,
            max_steps: 100_000,
        }
    }
}

/// The result of a completed execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Lines printed by the script.
    pub stdout: Vec<String>,
    /// Final variable bindings.
    pub vars: HashMap<String, Vec<u8>>,
    /// Interpreter steps consumed.
    pub steps: u64,
}

impl ExecOutcome {
    /// Convenience: a variable as UTF-8 (lossy).
    #[must_use]
    pub fn var_text(&self, name: &str) -> Option<String> {
        self.vars.get(name).map(|v| String::from_utf8_lossy(v).into_owned())
    }
}

const MAX_IMPORT_DEPTH: usize = 8;

struct Interp<'a> {
    ctx: &'a mut ExecContext,
    vars: HashMap<String, Vec<u8>>,
    stdout: Vec<String>,
    listener: Option<Listener>,
    conn: Option<Connection>,
    steps: u64,
}

/// Executes a script to completion.
///
/// # Errors
///
/// Propagates parse-free runtime failures: missing files, missing
/// variables, exhausted budgets, I/O errors, failed assertions.
pub fn execute(script: &Script, ctx: &mut ExecContext) -> Result<ExecOutcome, RuntimeError> {
    let mut interp = Interp {
        ctx,
        vars: HashMap::new(),
        stdout: Vec::new(),
        listener: None,
        conn: None,
        steps: 0,
    };
    interp.run(script, 0)?;
    Ok(ExecOutcome { stdout: interp.stdout, vars: interp.vars, steps: interp.steps })
}

impl Interp<'_> {
    fn run(&mut self, script: &Script, depth: usize) -> Result<(), RuntimeError> {
        if depth > MAX_IMPORT_DEPTH {
            return Err(RuntimeError::ScriptRuntime { reason: "import depth exceeded".into() });
        }
        for instr in &script.instrs {
            self.steps += 1;
            if self.steps > self.ctx.max_steps {
                return Err(RuntimeError::StepBudgetExhausted);
            }
            self.step(instr, depth)?;
        }
        Ok(())
    }

    fn value(&self, v: &Value) -> Result<Vec<u8>, RuntimeError> {
        match v {
            Value::Text(t) => Ok(t.clone().into_bytes()),
            Value::Bytes(b) => Ok(b.clone()),
            Value::Var(name) => self.vars.get(name).cloned().ok_or_else(|| {
                RuntimeError::ScriptRuntime { reason: format!("undefined variable ${name}") }
            }),
        }
    }

    fn value_text(&self, v: &Value) -> Result<String, RuntimeError> {
        String::from_utf8(self.value(v)?)
            .map_err(|_| RuntimeError::ScriptRuntime { reason: "value is not valid utf-8".into() })
    }

    fn volume(&self) -> Result<(SharedVolume, AeadKey), RuntimeError> {
        self.ctx
            .volume
            .clone()
            .ok_or_else(|| RuntimeError::ScriptRuntime { reason: "no volume mounted".into() })
    }

    fn conn(&self) -> Result<&Connection, RuntimeError> {
        self.conn
            .as_ref()
            .ok_or_else(|| RuntimeError::ScriptRuntime { reason: "no open connection".into() })
    }

    fn step(&mut self, instr: &Instr, depth: usize) -> Result<(), RuntimeError> {
        match instr {
            Instr::Print(v) => {
                let bytes = self.value(v)?;
                self.stdout.push(String::from_utf8_lossy(&bytes).into_owned());
            }
            Instr::Set { var, value } => {
                let bytes = self.value(value)?;
                self.vars.insert(var.clone(), bytes);
            }
            Instr::Concat { a, b, into } => {
                let mut bytes = self.value(a)?;
                bytes.extend_from_slice(&self.value(b)?);
                self.vars.insert(into.clone(), bytes);
            }
            Instr::Read { path, into } => {
                let path = self.value_text(path)?;
                let (vol, key) = self.volume()?;
                let data = vol.lock().read_file(&key, &path)?;
                self.vars.insert(into.clone(), data);
            }
            Instr::Write { path, data } => {
                let path = self.value_text(path)?;
                let bytes = self.value(data)?;
                let (vol, key) = self.volume()?;
                vol.lock().write_file(&key, &path, &bytes)?;
            }
            Instr::Import { path } => {
                let path = self.value_text(path)?;
                let (vol, key) = self.volume()?;
                let source = vol.lock().read_file(&key, &path)?;
                let source = String::from_utf8(source).map_err(|_| {
                    RuntimeError::ScriptRuntime { reason: "imported file is not utf-8".into() }
                })?;
                let imported = Script::parse(&source)?;
                self.run(&imported, depth + 1)?;
            }
            Instr::GetReport { data, into } => {
                let data = self.value(data)?;
                if data.len() > REPORT_DATA_LEN {
                    return Err(RuntimeError::ScriptRuntime {
                        reason: "report data longer than 64 bytes".into(),
                    });
                }
                let Reporter::Enclave { enclave, qe_target } = self.ctx.reporter.clone() else {
                    return Err(RuntimeError::ScriptRuntime {
                        reason: "getreport unavailable outside an enclave".into(),
                    });
                };
                let report = enclave.ereport(&qe_target, ReportData::from_slice(&data));
                self.vars.insert(into.clone(), report.to_bytes());
            }
            Instr::Listen { addr } => {
                let addr = self.value_text(addr)?;
                self.listener = Some(self.ctx.network.listen(&addr));
            }
            Instr::Accept => {
                let listener = self.listener.as_ref().ok_or_else(|| {
                    RuntimeError::ScriptRuntime { reason: "accept without listen".into() }
                })?;
                self.conn = Some(listener.accept()?);
            }
            Instr::Connect { addr } => {
                let addr = self.value_text(addr)?;
                self.conn = Some(self.ctx.network.connect(&addr)?);
            }
            Instr::RecvMsg { into } => {
                let msg = self.conn()?.recv()?;
                self.vars.insert(into.clone(), msg);
            }
            Instr::SendMsg { data } => {
                let bytes = self.value(data)?;
                self.conn()?.send(bytes)?;
            }
            Instr::Env { name, into } => {
                let name = self.value_text(name)?;
                let value = self.ctx.config.env_var(&name).ok_or_else(|| {
                    RuntimeError::ScriptRuntime { reason: format!("env var {name} unset") }
                })?;
                self.vars.insert(into.clone(), value.as_bytes().to_vec());
            }
            Instr::Arg { index, into } => {
                let value = self.ctx.config.args.get(*index).ok_or_else(|| {
                    RuntimeError::ScriptRuntime { reason: format!("argument {index} missing") }
                })?;
                self.vars.insert(into.clone(), value.as_bytes().to_vec());
            }
            Instr::Secret { name, into } => {
                let name = self.value_text(name)?;
                let value = self.ctx.config.secret(&name).ok_or_else(|| {
                    RuntimeError::ScriptRuntime { reason: format!("secret {name} absent") }
                })?;
                self.vars.insert(into.clone(), value.to_vec());
            }
            Instr::Compute { kind, n, into } => {
                let digest = compute(*kind, *n);
                self.vars.insert(into.clone(), digest);
            }
            Instr::AssertEq { a, b } => {
                let av = self.value(a)?;
                let bv = self.value(b)?;
                if av != bv {
                    return Err(RuntimeError::ScriptRuntime { reason: "assertion failed".into() });
                }
            }
        }
        Ok(())
    }
}

/// Deterministic compute kernels (the Fig. 9 workload bodies).
#[must_use]
pub fn compute(kind: ComputeKind, n: u64) -> Vec<u8> {
    match kind {
        ComputeKind::Mix => {
            let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ n;
            for i in 0..n.saturating_mul(10_000) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407 ^ i);
                x ^= x >> 29;
            }
            x.to_be_bytes().to_vec()
        }
        ComputeKind::Matmul => matmul_digest(n as usize, 1),
        ComputeKind::Train => matmul_digest((n as usize).max(2) / 2 + 8, 6),
    }
}

/// Fixed-point `n×n` matmul repeated for `epochs`, folded to a digest.
fn matmul_digest(n: usize, epochs: usize) -> Vec<u8> {
    let n = n.max(1);
    let a: Vec<i64> = (0..n * n).map(|i| ((i * 31 + 7) % 127) as i64 - 63).collect();
    let mut w: Vec<i64> = (0..n * n).map(|i| ((i * 17 + 3) % 101) as i64 - 50).collect();
    for epoch in 0..epochs {
        let mut next = vec![0i64; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    next[i * n + j] = next[i * n + j].wrapping_add(aik.wrapping_mul(w[k * n + j]));
                }
            }
        }
        // "weight update": rescale to keep values bounded.
        for v in &mut next {
            *v = (*v % 1009) + epoch as i64;
        }
        w = next;
    }
    let bytes: Vec<u8> = w.iter().flat_map(|v| v.to_be_bytes()).collect();
    sha256::digest(&bytes).as_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_volume() -> ExecContext {
        let key = AeadKey::new([1; 32]);
        let mut vol = Volume::format(&key, "app");
        vol.write_file(&key, "lib.ss", b"set fromlib loaded").unwrap();
        vol.write_file(&key, "data.txt", b"file content").unwrap();
        let mut ctx = ExecContext::bare(Network::new());
        ctx.volume = Some((Arc::new(Mutex::new(vol)), key));
        ctx.config = AppConfig {
            entry: "main".into(),
            args: vec!["--verbose".into()],
            env: vec![("MODE".into(), "prod".into())],
            volume_key: None,
            secrets: vec![("api-key".into(), b"s3cr3t".to_vec())],
        };
        ctx
    }

    fn run(src: &str, ctx: &mut ExecContext) -> Result<ExecOutcome, RuntimeError> {
        execute(&Script::parse(src).unwrap(), ctx)
    }

    #[test]
    fn print_set_concat() {
        let mut ctx = ExecContext::bare(Network::new());
        let out = run("set a foo\nset b bar\nconcat $a $b -> c\nprint $c", &mut ctx).unwrap();
        assert_eq!(out.stdout, vec!["foobar"]);
        assert_eq!(out.var_text("c").unwrap(), "foobar");
    }

    #[test]
    fn volume_read_write_import() {
        let mut ctx = ctx_with_volume();
        let out = run(
            "read data.txt -> d\nprint $d\nimport lib.ss\nprint $fromlib\nwrite out.txt $d",
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out.stdout, vec!["file content", "loaded"]);
        let (vol, key) = ctx.volume.clone().unwrap();
        assert_eq!(vol.lock().read_file(&key, "out.txt").unwrap(), b"file content");
    }

    #[test]
    fn config_accessors() {
        let mut ctx = ctx_with_volume();
        let out = run(
            "env MODE -> m\narg 0 -> a\nsecret api-key -> s\nprint $m\nprint $a\nprint $s",
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out.stdout, vec!["prod", "--verbose", "s3cr3t"]);
    }

    #[test]
    fn missing_lookups_fail() {
        let mut ctx = ExecContext::bare(Network::new());
        assert!(run("print $nope", &mut ctx).is_err());
        assert!(run("env HOME -> x", &mut ctx).is_err());
        assert!(run("secret nope -> x", &mut ctx).is_err());
        assert!(run("arg 3 -> x", &mut ctx).is_err());
        assert!(run("read f -> x", &mut ctx).is_err(), "no volume mounted");
        assert!(run("recvmsg -> x", &mut ctx).is_err(), "no connection");
        assert!(run("accept", &mut ctx).is_err(), "no listener");
    }

    #[test]
    fn getreport_disabled_outside_enclave() {
        let mut ctx = ExecContext::bare(Network::new());
        let err = run("getreport hex:01 -> r", &mut ctx).unwrap_err();
        assert!(matches!(err, RuntimeError::ScriptRuntime { .. }));
    }

    #[test]
    fn network_between_two_scripts() {
        let network = Network::new();
        let server_net = network.clone();
        let server = std::thread::spawn(move || {
            let mut ctx = ExecContext::bare(server_net);
            run("listen echo:1\naccept\nrecvmsg -> m\nsendmsg $m", &mut ctx).unwrap()
        });
        // Give the server a moment to bind.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut ctx = ExecContext::bare(network);
        let out = run("connect echo:1\nsendmsg ping\nrecvmsg -> r\nprint $r", &mut ctx).unwrap();
        server.join().unwrap();
        assert_eq!(out.stdout, vec!["ping"]);
    }

    #[test]
    fn assert_eq_behaviour() {
        let mut ctx = ExecContext::bare(Network::new());
        assert!(run("set a x\nassert_eq $a x", &mut ctx).is_ok());
        assert!(run("set a x\nassert_eq $a y", &mut ctx).is_err());
    }

    #[test]
    fn compute_is_deterministic_and_kind_sensitive() {
        let a = compute(ComputeKind::Matmul, 16);
        let b = compute(ComputeKind::Matmul, 16);
        assert_eq!(a, b);
        assert_ne!(compute(ComputeKind::Matmul, 16), compute(ComputeKind::Matmul, 17));
        assert_ne!(compute(ComputeKind::Mix, 4), compute(ComputeKind::Train, 4));
    }

    #[test]
    fn step_budget_enforced() {
        let mut ctx = ExecContext::bare(Network::new());
        ctx.max_steps = 3;
        let err = run("set a 1\nset b 2\nset c 3\nset d 4", &mut ctx).unwrap_err();
        assert_eq!(err, RuntimeError::StepBudgetExhausted);
    }

    #[test]
    fn import_depth_limited() {
        let key = AeadKey::new([2; 32]);
        let mut vol = Volume::format(&key, "loop");
        vol.write_file(&key, "self.ss", b"import self.ss").unwrap();
        let mut ctx = ExecContext::bare(Network::new());
        ctx.volume = Some((Arc::new(Mutex::new(vol)), key));
        let err = run("import self.ss", &mut ctx).unwrap_err();
        assert!(matches!(err, RuntimeError::ScriptRuntime { .. }));
    }
}
