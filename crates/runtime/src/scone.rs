//! The SCONE-like runtime: transparent attestation and configuration
//! for legacy applications (§2.3, §3.3.1), in both the vulnerable
//! *baseline* flavor and the SinClave-hardened *singleton* flavor.
//!
//! Baseline flow: starter builds the (common) enclave → enclave dials
//! the verifier address *given by the starter* → attests with a quote
//! bound to the channel transcript → receives `AppConfig` → mounts the
//! volume → runs the entry script. The fatal gap: nothing about the
//! verifier is measured, so the starter (the adversary) can point the
//! enclave at *their* verifier and configure it freely (§3.2,
//! "creating a report server by configuration").
//!
//! SinClave flow: the starter first fetches a [`grant`] (token +
//! on-demand SigStruct); the instance page — *measured* — pins the
//! verifier identity, and the runtime refuses channels that do not
//! terminate at that identity.
//!
//! [`grant`]: SconeHost::request_grant

use crate::error::RuntimeError;
use crate::exec::{self, ExecContext, ExecOutcome, Reporter, SharedVolume};
use crate::image::ProgramImage;
use crate::script::Script;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sinclave::instance_page::InstancePage;
use sinclave::protocol::Message;
use sinclave::signer::{sign_enclave, SignedEnclave, SignerConfig};
use sinclave::token::AttestationToken;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_crypto::sha256::Digest;
use sinclave_net::{Network, SecureChannel};
use sinclave_sgx::attributes::Attributes;
use sinclave_sgx::enclave::Enclave;
use sinclave_sgx::launch::LaunchControl;
use sinclave_sgx::platform::Platform;
use sinclave_sgx::quote::QuotingEnclave;
use sinclave_sgx::report::ReportData;
use sinclave_sgx::secinfo::SecInfo;
use sinclave_sgx::sigstruct::SigStruct;
use sinclave_sgx::PAGE_SIZE;
use std::sync::Arc;

/// A distributable application package: the image plus the signer's
/// artifacts (base hash + common SigStruct) — the paper's "binary
/// distribution of software".
#[derive(Clone, Debug)]
pub struct PackagedApp {
    /// The program image.
    pub image: ProgramImage,
    /// The signer's output over this image's layout.
    pub signed: SignedEnclave,
}

/// Signs an image, producing a distributable package.
///
/// # Errors
///
/// Propagates layout and signing failures.
pub fn package_app(
    image: &ProgramImage,
    signer_key: &RsaPrivateKey,
    config: &SignerConfig,
) -> Result<PackagedApp, RuntimeError> {
    let layout = image.layout()?;
    let signed = sign_enclave(&layout, signer_key, config)?;
    Ok(PackagedApp { image: image.clone(), signed })
}

/// Start options common to both flows.
#[derive(Clone, Debug)]
pub struct StartOptions {
    /// Address of the verifier (CAS). *Untrusted routing information.*
    pub verifier_addr: String,
    /// Which configuration to request.
    pub config_id: String,
    /// The application volume the host makes available, if any.
    pub app_volume: Option<SharedVolume>,
    /// Enclave attributes to start with.
    pub attributes: Attributes,
    /// Seed for the runtime's RNG (nonces, channel keys).
    pub rng_seed: u64,
}

impl StartOptions {
    /// Defaults: production attributes, no volume.
    #[must_use]
    pub fn new(verifier_addr: &str, config_id: &str) -> Self {
        StartOptions {
            verifier_addr: verifier_addr.to_owned(),
            config_id: config_id.to_owned(),
            app_volume: None,
            attributes: Attributes::production(),
            rng_seed: 0,
        }
    }

    /// Attaches an application volume.
    #[must_use]
    pub fn with_volume(mut self, volume: SharedVolume) -> Self {
        self.app_volume = Some(volume);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

/// A started, attested, configured application.
#[derive(Debug)]
pub struct RunningApp {
    /// The enclave the app ran in.
    pub enclave: Arc<Enclave>,
    /// The configuration received from the verifier.
    pub config: AppConfig,
    /// The app's execution outcome.
    pub outcome: ExecOutcome,
}

/// A SinClave grant as received over the wire.
#[derive(Clone, Debug)]
pub struct WireGrant {
    /// The one-time token.
    pub token: AttestationToken,
    /// Verifier identity to place in the instance page.
    pub verifier_identity: Digest,
    /// The on-demand SigStruct.
    pub sigstruct: SigStruct,
}

/// One machine's SCONE installation: platform, quoting enclave,
/// network stack and launch policy.
pub struct SconeHost {
    /// The CPU package.
    pub platform: Arc<Platform>,
    /// The provisioned quoting enclave.
    pub qe: Arc<QuotingEnclave>,
    /// The host network.
    pub network: Network,
    /// Launch-control policy.
    pub launch: LaunchControl,
}

impl SconeHost {
    /// Creates a host with flexible launch control.
    #[must_use]
    pub fn new(platform: Arc<Platform>, qe: Arc<QuotingEnclave>, network: Network) -> Self {
        SconeHost { platform, qe, network, launch: LaunchControl::Flexible }
    }

    /// Builds and initializes the enclave for `packaged` with the given
    /// instance page and SigStruct.
    ///
    /// # Errors
    ///
    /// Propagates construction and `EINIT` failures.
    pub fn build_enclave(
        &self,
        packaged: &PackagedApp,
        instance_page: &[u8; PAGE_SIZE],
        sigstruct: &SigStruct,
        attributes: Attributes,
    ) -> Result<Enclave, RuntimeError> {
        let layout = &packaged.signed.layout;
        let mut builder = layout.build(self.platform.clone(), attributes)?;
        builder.add_page(
            layout.instance_page_offset(),
            instance_page,
            SecInfo::read_only(),
            true,
        )?;
        Ok(builder.einit(sigstruct, None, &self.launch)?)
    }

    /// Baseline start (vulnerable SCONE flow).
    ///
    /// # Errors
    ///
    /// Propagates build, attestation and execution failures.
    pub fn start_baseline(
        &self,
        packaged: &PackagedApp,
        opts: &StartOptions,
    ) -> Result<RunningApp, RuntimeError> {
        // The baseline flow is what a *baseline-flavored* measured
        // runtime does. A SinClave-aware runtime refuses unattested
        // configuration: its common enclave never talks to a verifier
        // (§4.4, "the runtime can decide whether it requires
        // attestation or not").
        if packaged.image.flavor != crate::image::RuntimeFlavor::Baseline {
            return Err(RuntimeError::InstancePageUnexpected {
                found: "sinclave-aware runtime refuses baseline configuration",
            });
        }
        let mut rng = StdRng::seed_from_u64(opts.rng_seed ^ 0xba5e);
        let enclave = Arc::new(self.build_enclave(
            packaged,
            &InstancePage::common_page(),
            &packaged.signed.common_sigstruct,
            opts.attributes,
        )?);
        let (config, _chan) = self.attest(&enclave, opts, None, &mut rng)?;
        let outcome = self.run_app(&enclave, packaged, &config, opts.app_volume.clone())?;
        Ok(RunningApp { enclave, config, outcome })
    }

    /// Requests a singleton grant from the verifier (the starter-side
    /// half of Fig. 7c's "singleton page retrieval").
    ///
    /// # Errors
    ///
    /// Propagates network errors and verifier denials.
    pub fn request_grant(
        &self,
        packaged: &PackagedApp,
        verifier_addr: &str,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<WireGrant, RuntimeError> {
        let conn = self.network.connect(verifier_addr)?;
        let mut chan = SecureChannel::client_connect(conn, rng)?;
        chan.send(
            &Message::GrantRequest {
                common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                base_hash: packaged.signed.base_hash.encode().to_vec(),
            }
            .to_bytes(),
        )?;
        match Message::from_bytes(&chan.recv()?)? {
            Message::GrantResponse { token, verifier_identity, sigstruct } => Ok(WireGrant {
                token,
                verifier_identity: Digest(verifier_identity),
                sigstruct: SigStruct::from_bytes(&sigstruct)?,
            }),
            Message::Denied { reason } => Err(RuntimeError::AttestationDenied { reason }),
            _ => Err(RuntimeError::ProtocolViolation { context: "grant response" }),
        }
    }

    /// SinClave start: grant, singleton construction, pinned
    /// attestation, configuration, execution (§4.4).
    ///
    /// # Errors
    ///
    /// Propagates grant, build, attestation and execution failures.
    pub fn start_sinclave(
        &self,
        packaged: &PackagedApp,
        opts: &StartOptions,
    ) -> Result<RunningApp, RuntimeError> {
        if packaged.image.flavor != crate::image::RuntimeFlavor::Sinclave {
            return Err(RuntimeError::InstancePageUnexpected {
                found: "baseline runtime cannot run as singleton",
            });
        }
        let mut rng = StdRng::seed_from_u64(opts.rng_seed ^ 0x51c1);
        let grant = self.request_grant(packaged, &opts.verifier_addr, &mut rng)?;
        let page = InstancePage::new(grant.token, grant.verifier_identity);
        let enclave = Arc::new(self.build_enclave(
            packaged,
            &page.to_page_bytes(),
            &grant.sigstruct,
            opts.attributes,
        )?);
        self.resume_singleton(packaged, enclave, opts)
    }

    /// Runs the *in-enclave* part of the SinClave flow on an
    /// already-built singleton enclave: read the instance page from
    /// enclave memory, attest to the pinned verifier, fetch config,
    /// execute. Split out so attack scenarios can drive construction
    /// and entry separately.
    ///
    /// # Errors
    ///
    /// Propagates attestation and execution failures; fails with
    /// [`RuntimeError::InstancePageUnexpected`] if the enclave has a
    /// common (zeroed) page.
    pub fn resume_singleton(
        &self,
        packaged: &PackagedApp,
        enclave: Arc<Enclave>,
        opts: &StartOptions,
    ) -> Result<RunningApp, RuntimeError> {
        let mut rng = StdRng::seed_from_u64(opts.rng_seed ^ 0x51c2);
        // In-enclave: the measured runtime reads its own instance page.
        let offset = packaged.signed.layout.instance_page_offset();
        let page_bytes: [u8; PAGE_SIZE] =
            enclave.read(offset, PAGE_SIZE)?.try_into().expect("page read");
        let Some(page) = InstancePage::parse(&page_bytes)? else {
            return Err(RuntimeError::InstancePageUnexpected { found: "common (zeroed) page" });
        };

        let (config, _chan) = self.attest(&enclave, opts, Some(&page), &mut rng)?;
        let outcome = self.run_app(&enclave, packaged, &config, opts.app_volume.clone())?;
        Ok(RunningApp { enclave, config, outcome })
    }

    /// Shared attestation logic. With `Some(page)` it runs the
    /// SinClave flow (identity pinning + token); with `None` the
    /// baseline flow.
    fn attest(
        &self,
        enclave: &Arc<Enclave>,
        opts: &StartOptions,
        page: Option<&InstancePage>,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(AppConfig, SecureChannel), RuntimeError> {
        let conn = self.network.connect(&opts.verifier_addr)?;
        let mut chan = SecureChannel::client_connect(conn, rng)?;

        if let Some(page) = page {
            // THE SinClave check: the channel must terminate at the
            // verifier whose identity is baked into our measurement.
            if chan.server_key_fingerprint() != page.verifier_identity {
                return Err(RuntimeError::VerifierIdentityMismatch);
            }
        }

        chan.send(&Message::ChallengeRequest.to_bytes())?;
        let Message::Challenge { nonce } = Message::from_bytes(&chan.recv()?)? else {
            return Err(RuntimeError::ProtocolViolation { context: "challenge" });
        };

        let report_data = ReportData::from_digest(&chan.transcript());
        let report = enclave.ereport(&self.qe.target_info(), report_data);
        let quote = self.qe.quote(&report, nonce).map_err(RuntimeError::Sgx)?;

        let request = match page {
            Some(page) => Message::AttestRequest {
                quote: quote.to_bytes(),
                token: page.token,
                config_id: opts.config_id.clone(),
            },
            None => Message::BaselineAttestRequest {
                quote: quote.to_bytes(),
                config_id: opts.config_id.clone(),
            },
        };
        chan.send(&request.to_bytes())?;

        match Message::from_bytes(&chan.recv()?)? {
            Message::ConfigResponse { config } => Ok((AppConfig::from_bytes(&config)?, chan)),
            Message::Denied { reason } => Err(RuntimeError::AttestationDenied { reason }),
            _ => Err(RuntimeError::ProtocolViolation { context: "config response" }),
        }
    }

    /// Mounts the volume named by the configuration and executes the
    /// entry script.
    fn run_app(
        &self,
        enclave: &Arc<Enclave>,
        packaged: &PackagedApp,
        config: &AppConfig,
        app_volume: Option<SharedVolume>,
    ) -> Result<ExecOutcome, RuntimeError> {
        let volume = match (&config.volume_key, app_volume) {
            (Some(key_bytes), Some(volume)) => {
                let key = AeadKey::new(*key_bytes);
                volume.lock().verify_key(&key).map_err(|_| RuntimeError::VolumeRejected)?;
                Some((volume, key))
            }
            (Some(_), None) => return Err(RuntimeError::VolumeRejected),
            (None, _) => None,
        };

        let entry_source =
            if config.entry.is_empty() || config.entry == "embedded" {
                packaged.image.embedded_entry.clone().ok_or(RuntimeError::ScriptRuntime {
                    reason: "no embedded entry script".into(),
                })?
            } else {
                let (vol, key) = volume.as_ref().ok_or(RuntimeError::ScriptRuntime {
                    reason: "entry script requires a volume".into(),
                })?;
                String::from_utf8(vol.lock().read_file(key, &config.entry)?).map_err(|_| {
                    RuntimeError::ScriptRuntime { reason: "entry script is not utf-8".into() }
                })?
            };
        let script = Script::parse(&entry_source)?;
        let mut ctx = ExecContext {
            config: config.clone(),
            volume,
            network: self.network.clone(),
            reporter: Reporter::Enclave {
                enclave: enclave.clone(),
                qe_target: self.qe.target_info(),
            },
            max_steps: 10_000_000,
        };
        exec::execute(&script, &mut ctx)
    }

    /// Starts the *common* enclave without any attestation and runs
    /// the embedded entry (if any). Models unattested/hardware-only
    /// execution in Fig. 8, and what a singleton-aware runtime does
    /// when it finds a zeroed instance page: run, but without access
    /// to any verifier-held secrets.
    ///
    /// # Errors
    ///
    /// Propagates build and execution failures.
    pub fn start_unattested(&self, packaged: &PackagedApp) -> Result<RunningApp, RuntimeError> {
        let enclave = Arc::new(self.build_enclave(
            packaged,
            &InstancePage::common_page(),
            &packaged.signed.common_sigstruct,
            Attributes::production(),
        )?);
        let config = AppConfig::default();
        let outcome = match &packaged.image.embedded_entry {
            Some(source) => {
                let script = Script::parse(source)?;
                let mut ctx = ExecContext {
                    config: config.clone(),
                    volume: None,
                    network: self.network.clone(),
                    reporter: Reporter::Enclave {
                        enclave: enclave.clone(),
                        qe_target: self.qe.target_info(),
                    },
                    max_steps: 10_000_000,
                };
                exec::execute(&script, &mut ctx)?
            }
            None => ExecOutcome::default(),
        };
        Ok(RunningApp { enclave, config, outcome })
    }
}

/// Runs an image's embedded entry *without* any enclave ("simulation
/// mode" in Fig. 8 / native execution in Fig. 7a).
///
/// # Errors
///
/// Propagates script failures.
pub fn run_native(image: &ProgramImage, network: &Network) -> Result<ExecOutcome, RuntimeError> {
    let source = image.embedded_entry.as_deref().unwrap_or("");
    let script = Script::parse(source)?;
    let mut ctx = ExecContext::bare(network.clone());
    exec::execute(&script, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinclave::verifier::SingletonIssuer;
    use sinclave_sgx::attestation::AttestationService;
    use sinclave_sgx::quote::Quote;

    /// A miniature verifier speaking `core::protocol` — deliberately
    /// independent of the `sinclave-cas` crate so the runtime and CAS
    /// implementations cross-validate each other in integration tests.
    struct TestVerifier {
        channel_key: RsaPrivateKey,
        issuer: SingletonIssuer,
        attestation_root: sinclave_crypto::rsa::RsaPublicKey,
        expected_common: sinclave_sgx::Measurement,
        config: AppConfig,
    }

    impl TestVerifier {
        fn serve_one(&self, listener: &sinclave_net::Listener, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let conn = listener.accept().unwrap();
            let mut chan = SecureChannel::server_accept(conn, &self.channel_key, &mut rng).unwrap();
            let mut nonce = [0u8; 16];
            loop {
                let Ok(raw) = chan.recv() else { return };
                match Message::from_bytes(&raw).unwrap() {
                    Message::GrantRequest { common_sigstruct, base_hash } => {
                        let ss = SigStruct::from_bytes(&common_sigstruct).unwrap();
                        let bh = sinclave::BaseEnclaveHash::decode(&base_hash).unwrap();
                        match self.issuer.issue(&mut rng, &ss, &bh) {
                            Ok(grant) => chan
                                .send(
                                    &Message::GrantResponse {
                                        token: grant.token,
                                        verifier_identity: *grant.verifier_identity.as_bytes(),
                                        sigstruct: grant.sigstruct.to_bytes(),
                                    }
                                    .to_bytes(),
                                )
                                .unwrap(),
                            Err(e) => chan
                                .send(&Message::Denied { reason: e.to_string() }.to_bytes())
                                .unwrap(),
                        }
                    }
                    Message::ChallengeRequest => {
                        rng.fill_bytes(&mut nonce);
                        chan.send(&Message::Challenge { nonce }.to_bytes()).unwrap();
                    }
                    Message::AttestRequest { quote, token, config_id: _ } => {
                        let quote = Quote::from_bytes(&quote).unwrap();
                        let body = quote.verify(&self.attestation_root, &nonce).unwrap();
                        assert_eq!(
                            &body.report_data.0[..32],
                            chan.transcript().as_bytes(),
                            "channel binding"
                        );
                        match self.issuer.redeem(&token, &body.mrenclave) {
                            Ok(_common) => chan
                                .send(
                                    &Message::ConfigResponse { config: self.config.to_bytes() }
                                        .to_bytes(),
                                )
                                .unwrap(),
                            Err(e) => chan
                                .send(&Message::Denied { reason: e.to_string() }.to_bytes())
                                .unwrap(),
                        }
                    }
                    Message::BaselineAttestRequest { quote, .. } => {
                        let quote = Quote::from_bytes(&quote).unwrap();
                        let body = quote.verify(&self.attestation_root, &nonce).unwrap();
                        let ok = body.mrenclave == self.expected_common
                            && &body.report_data.0[..32] == chan.transcript().as_bytes()
                            && !body.is_debug();
                        if ok {
                            chan.send(
                                &Message::ConfigResponse { config: self.config.to_bytes() }
                                    .to_bytes(),
                            )
                            .unwrap();
                        } else {
                            chan.send(
                                &Message::Denied { reason: "verification failed".into() }
                                    .to_bytes(),
                            )
                            .unwrap();
                        }
                    }
                    other => panic!("unexpected message {other:?}"),
                }
            }
        }
    }

    struct World {
        host: SconeHost,
        verifier: Arc<TestVerifier>,
        packaged: PackagedApp,
    }

    fn world(seed: u64, image: ProgramImage, config: AppConfig) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, 1024).unwrap();
        let platform = Arc::new(Platform::new(&mut rng));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap(),
        );
        let network = Network::new();
        let host = SconeHost::new(platform, qe, network);

        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let packaged = package_app(&image, &signer_key, &SignerConfig::default()).unwrap();
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let identity = channel_key.public_key().fingerprint();
        let verifier = Arc::new(TestVerifier {
            channel_key,
            issuer: SingletonIssuer::new(signer_key, identity),
            attestation_root: service.root_public_key().clone(),
            expected_common: packaged.signed.common_measurement(),
            config,
        });
        World { host, verifier, packaged }
    }

    fn spawn_verifier(w: &World, connections: usize, seed: u64) -> std::thread::JoinHandle<()> {
        let listener = w.host.network.listen("cas:443");
        let verifier = w.verifier.clone();
        std::thread::spawn(move || {
            for i in 0..connections {
                verifier.serve_one(&listener, seed + i as u64);
            }
        })
    }

    fn hello_image() -> ProgramImage {
        ProgramImage::with_entry("hello", "secret greeting -> g\nprint $g", 2)
    }

    fn hello_config() -> AppConfig {
        AppConfig {
            entry: "embedded".into(),
            secrets: vec![("greeting".into(), b"hello from verifier".to_vec())],
            ..AppConfig::default()
        }
    }

    #[test]
    fn baseline_flow_end_to_end() {
        let w = world(1, hello_image(), hello_config());
        let server = spawn_verifier(&w, 1, 100);
        let app = w
            .host
            .start_baseline(&w.packaged, &StartOptions::new("cas:443", "app").with_seed(7))
            .unwrap();
        server.join().unwrap();
        assert_eq!(app.outcome.stdout, vec!["hello from verifier"]);
        assert_eq!(app.enclave.mrenclave(), w.packaged.signed.common_measurement());
    }

    #[test]
    fn sinclave_flow_end_to_end() {
        let w = world(2, hello_image().sinclave_aware(), hello_config());
        let server = spawn_verifier(&w, 2, 200); // grant + attest connections
        let app = w
            .host
            .start_sinclave(&w.packaged, &StartOptions::new("cas:443", "app").with_seed(8))
            .unwrap();
        server.join().unwrap();
        assert_eq!(app.outcome.stdout, vec!["hello from verifier"]);
        // The singleton's measurement differs from the common one.
        assert_ne!(app.enclave.mrenclave(), w.packaged.signed.common_measurement());
    }

    #[test]
    fn sinclave_enclaves_are_unique_per_start() {
        let w = world(3, hello_image().sinclave_aware(), hello_config());
        let server = spawn_verifier(&w, 4, 300);
        let app1 = w
            .host
            .start_sinclave(&w.packaged, &StartOptions::new("cas:443", "app").with_seed(1))
            .unwrap();
        let app2 = w
            .host
            .start_sinclave(&w.packaged, &StartOptions::new("cas:443", "app").with_seed(2))
            .unwrap();
        server.join().unwrap();
        assert_ne!(app1.enclave.mrenclave(), app2.enclave.mrenclave());
    }

    #[test]
    fn sinclave_pins_verifier_identity() {
        // A MITM terminating the channel with a different key is
        // detected by the identity check (baseline would fall for it).
        let w = world(4, hello_image().sinclave_aware(), hello_config());
        let server = spawn_verifier(&w, 1, 400);
        let mut rng = StdRng::seed_from_u64(4242);
        let grant = w.host.request_grant(&w.packaged, "cas:443", &mut rng).unwrap();
        server.join().unwrap();

        // Adversary now redirects the attestation connection to their
        // own endpoint with their own channel key.
        let mitm_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let mitm_listener = w.host.network.listen("cas:443");
        let mitm = std::thread::spawn(move || {
            let conn = mitm_listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(4343);
            // Handshake succeeds (channels don't authenticate servers
            // by themselves)…
            let _chan = SecureChannel::server_accept(conn, &mitm_key, &mut rng);
        });

        let page = InstancePage::new(grant.token, grant.verifier_identity);
        let enclave = Arc::new(
            w.host
                .build_enclave(
                    &w.packaged,
                    &page.to_page_bytes(),
                    &grant.sigstruct,
                    Attributes::production(),
                )
                .unwrap(),
        );
        let err = w
            .host
            .resume_singleton(
                &w.packaged,
                enclave,
                &StartOptions::new("cas:443", "app").with_seed(9),
            )
            .unwrap_err();
        mitm.join().unwrap();
        assert_eq!(err, RuntimeError::VerifierIdentityMismatch);
    }

    #[test]
    fn flavor_gates_are_enforced() {
        let w = world(9, hello_image(), hello_config());
        // Baseline image cannot start as singleton…
        assert!(matches!(
            w.host.start_sinclave(&w.packaged, &StartOptions::new("cas:443", "app")),
            Err(RuntimeError::InstancePageUnexpected { .. })
        ));
        // …and a sinclave-aware image refuses the baseline flow.
        let aware = world(10, hello_image().sinclave_aware(), hello_config());
        assert!(matches!(
            aware.host.start_baseline(&aware.packaged, &StartOptions::new("cas:443", "app")),
            Err(RuntimeError::InstancePageUnexpected { .. })
        ));
    }

    #[test]
    fn baseline_rejects_wrong_binary() {
        // The verifier's baseline policy pins the common MRENCLAVE; a
        // different binary is refused.
        let w = world(5, hello_image(), hello_config());
        let other_image = ProgramImage::with_entry("other", "print hi", 2);
        let mut rng = StdRng::seed_from_u64(55);
        let other_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let other = package_app(&other_image, &other_key, &SignerConfig::default()).unwrap();

        let server = spawn_verifier(&w, 1, 500);
        let err = w
            .host
            .start_baseline(&other, &StartOptions::new("cas:443", "app").with_seed(3))
            .unwrap_err();
        server.join().unwrap();
        assert!(matches!(err, RuntimeError::AttestationDenied { .. }));
    }

    #[test]
    fn unattested_and_native_runs() {
        let image = ProgramImage::with_entry("calc", "compute mix 3 -> x\nprint done", 2);
        let w = world(6, image.clone(), AppConfig::default());
        let app = w.host.start_unattested(&w.packaged).unwrap();
        assert_eq!(app.outcome.stdout, vec!["done"]);
        let native = run_native(&image, &w.host.network).unwrap();
        assert_eq!(native.stdout, vec!["done"]);
        // Identical compute results inside and outside the enclave.
        assert_eq!(app.outcome.vars["x"], native.vars["x"]);
    }

    #[test]
    fn volume_backed_entry_script() {
        let key_bytes = [3u8; 32];
        let key = AeadKey::new(key_bytes);
        let mut vol = sinclave_fs::Volume::format(&key, "appvol");
        vol.write_file(&key, "main.ss", b"read data.txt -> d\nprint $d").unwrap();
        vol.write_file(&key, "data.txt", b"volume payload").unwrap();
        let volume: SharedVolume = Arc::new(parking_lot::Mutex::new(vol));

        let config = AppConfig {
            entry: "main.ss".into(),
            volume_key: Some(key_bytes),
            ..AppConfig::default()
        };
        let w = world(7, ProgramImage::interpreter("python", 2), config);
        let server = spawn_verifier(&w, 1, 700);
        let app = w
            .host
            .start_baseline(
                &w.packaged,
                &StartOptions::new("cas:443", "app").with_volume(volume).with_seed(4),
            )
            .unwrap();
        server.join().unwrap();
        assert_eq!(app.outcome.stdout, vec!["volume payload"]);
    }

    #[test]
    fn wrong_volume_key_rejected() {
        let key = AeadKey::new([4u8; 32]);
        let vol = sinclave_fs::Volume::format(&key, "appvol");
        let volume: SharedVolume = Arc::new(parking_lot::Mutex::new(vol));
        let config = AppConfig {
            entry: "main.ss".into(),
            volume_key: Some([9u8; 32]), // wrong key in config
            ..AppConfig::default()
        };
        let w = world(8, ProgramImage::interpreter("python", 2), config);
        let server = spawn_verifier(&w, 1, 800);
        let err = w
            .host
            .start_baseline(
                &w.packaged,
                &StartOptions::new("cas:443", "app").with_volume(volume).with_seed(5),
            )
            .unwrap_err();
        server.join().unwrap();
        assert_eq!(err, RuntimeError::VolumeRejected);
    }
}
