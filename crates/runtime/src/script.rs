//! SinScript — the application model.
//!
//! A tiny, deterministic, line-oriented scripting language standing in
//! for the Python/NodeJS applications of the paper. It has exactly the
//! capabilities the attack story needs (§3.2):
//!
//! * dynamic code loading (`import` reads more script from the
//!   volume — the "dynamic library" vector),
//! * filesystem and network I/O,
//! * `getreport` — arbitrary-`reportdata` report generation, as SCONE,
//!   Occlum and Gramine all expose to user code,
//!
//! plus synthetic compute kernels for the macro-benchmarks (Fig. 9).
//!
//! Grammar: one statement per line, `#` comments, tokens separated by
//! whitespace, optional `-> var` result binding. Values are literals,
//! `hex:…` byte strings, or `$var` references.

use crate::error::RuntimeError;
use std::fmt;

/// A value operand: literal text, hex bytes, or a variable reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Literal UTF-8 text.
    Text(String),
    /// Literal bytes given as hex.
    Bytes(Vec<u8>),
    /// Reference to a variable.
    Var(String),
}

impl Value {
    fn parse(token: &str) -> Result<Self, String> {
        if let Some(name) = token.strip_prefix('$') {
            if name.is_empty() {
                return Err("empty variable reference".to_owned());
            }
            Ok(Value::Var(name.to_owned()))
        } else if let Some(hex) = token.strip_prefix("hex:") {
            if hex.len() % 2 != 0 {
                return Err("odd-length hex literal".to_owned());
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for pair in hex.as_bytes().chunks(2) {
                let s = std::str::from_utf8(pair).map_err(|_| "bad hex".to_owned())?;
                bytes.push(u8::from_str_radix(s, 16).map_err(|e| e.to_string())?);
            }
            Ok(Value::Bytes(bytes))
        } else {
            Ok(Value::Text(token.to_owned()))
        }
    }
}

/// Compute kernels for workload scripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeKind {
    /// Scalar integer arithmetic mix.
    Mix,
    /// `n × n` fixed-point matrix multiplication (inference-style).
    Matmul,
    /// Repeated matmul epochs with weight updates (training-style).
    Train,
}

impl ComputeKind {
    fn parse(token: &str) -> Result<Self, String> {
        match token {
            "mix" => Ok(ComputeKind::Mix),
            "matmul" => Ok(ComputeKind::Matmul),
            "train" => Ok(ComputeKind::Train),
            other => Err(format!("unknown compute kind {other:?}")),
        }
    }
}

/// One statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Append a value to stdout.
    Print(Value),
    /// Bind a literal to a variable.
    Set {
        /// Target variable.
        var: String,
        /// The value (literal or copied variable).
        value: Value,
    },
    /// Concatenate two values into a variable.
    Concat {
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
        /// Target variable.
        into: String,
    },
    /// Read a volume file into a variable.
    Read {
        /// Path on the application volume.
        path: Value,
        /// Target variable.
        into: String,
    },
    /// Write a value to a volume file.
    Write {
        /// Path on the application volume.
        path: Value,
        /// Data to write.
        data: Value,
    },
    /// Load and execute another script from the volume (dynamic code).
    Import {
        /// Path of the script file.
        path: Value,
    },
    /// Generate an SGX report with caller-chosen `reportdata`.
    GetReport {
        /// Up to 64 bytes of report data.
        data: Value,
        /// Target variable for the serialized report.
        into: String,
    },
    /// Bind a network listener.
    Listen {
        /// Address to bind.
        addr: Value,
    },
    /// Accept one connection on the listener.
    Accept,
    /// Dial an address.
    Connect {
        /// Address to dial.
        addr: Value,
    },
    /// Receive one message from the current connection.
    RecvMsg {
        /// Target variable.
        into: String,
    },
    /// Send a message on the current connection.
    SendMsg {
        /// Data to send.
        data: Value,
    },
    /// Read an environment variable (provisioned configuration).
    Env {
        /// Variable name in the configuration.
        name: Value,
        /// Target variable.
        into: String,
    },
    /// Read a program argument by index.
    Arg {
        /// Zero-based index.
        index: usize,
        /// Target variable.
        into: String,
    },
    /// Read a named secret from the configuration.
    Secret {
        /// Secret name.
        name: Value,
        /// Target variable.
        into: String,
    },
    /// Run a compute kernel; binds a digest of the result.
    Compute {
        /// Kernel type.
        kind: ComputeKind,
        /// Size/iteration parameter.
        n: u64,
        /// Target variable.
        into: String,
    },
    /// Assert two values are equal (testing aid).
    AssertEq {
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
}

/// A parsed script.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Script {
    /// The statements in order.
    pub instrs: Vec<Instr>,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(t) => f.write_str(t),
            Value::Bytes(b) => {
                f.write_str("hex:")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::Var(name) => write!(f, "${name}"),
        }
    }
}

impl fmt::Display for ComputeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComputeKind::Mix => "mix",
            ComputeKind::Matmul => "matmul",
            ComputeKind::Train => "train",
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Print(v) => write!(f, "print {v}"),
            Instr::Set { var, value } => write!(f, "set {var} {value}"),
            Instr::Concat { a, b, into } => write!(f, "concat {a} {b} -> {into}"),
            Instr::Read { path, into } => write!(f, "read {path} -> {into}"),
            Instr::Write { path, data } => write!(f, "write {path} {data}"),
            Instr::Import { path } => write!(f, "import {path}"),
            Instr::GetReport { data, into } => write!(f, "getreport {data} -> {into}"),
            Instr::Listen { addr } => write!(f, "listen {addr}"),
            Instr::Accept => f.write_str("accept"),
            Instr::Connect { addr } => write!(f, "connect {addr}"),
            Instr::RecvMsg { into } => write!(f, "recvmsg -> {into}"),
            Instr::SendMsg { data } => write!(f, "sendmsg {data}"),
            Instr::Env { name, into } => write!(f, "env {name} -> {into}"),
            Instr::Arg { index, into } => write!(f, "arg {index} -> {into}"),
            Instr::Secret { name, into } => write!(f, "secret {name} -> {into}"),
            Instr::Compute { kind, n, into } => write!(f, "compute {kind} {n} -> {into}"),
            Instr::AssertEq { a, b } => write!(f, "assert_eq {a} {b}"),
        }
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Script({} statements)", self.instrs.len())
    }
}

impl Script {
    /// Renders the script back to parsable source text.
    ///
    /// `Script::parse(&s.to_source())` reproduces `s` exactly, provided
    /// the script's literals contain no whitespace or reserved prefixes
    /// (values that *do* are better written as `hex:` literals).
    #[must_use]
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for instr in &self.instrs {
            out.push_str(&instr.to_string());
            out.push('\n');
        }
        out
    }
}

impl Script {
    /// Parses script source.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ScriptParse`] with the offending line.
    pub fn parse(source: &str) -> Result<Self, RuntimeError> {
        let mut instrs = Vec::new();
        for (idx, raw_line) in source.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let instr = Self::parse_line(line)
                .map_err(|reason| RuntimeError::ScriptParse { line: idx + 1, reason })?;
            instrs.push(instr);
        }
        Ok(Script { instrs })
    }

    fn parse_line(line: &str) -> Result<Instr, String> {
        // Split off an optional `-> var` suffix.
        let (body, into) = match line.rsplit_once("->") {
            Some((body, var)) => {
                let var = var.trim();
                if var.is_empty() || var.contains(char::is_whitespace) {
                    return Err("malformed result binding".to_owned());
                }
                (body.trim(), Some(var.to_owned()))
            }
            None => (line, None),
        };
        let mut tokens = body.split_whitespace();
        let cmd = tokens.next().ok_or_else(|| "empty statement".to_owned())?;
        let args: Vec<&str> = tokens.collect();

        let need = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("{cmd} expects {n} argument(s), got {}", args.len()))
            }
        };
        let into_var = |into: &Option<String>| -> Result<String, String> {
            into.clone().ok_or_else(|| format!("{cmd} requires `-> var`"))
        };
        let no_into = |into: &Option<String>| -> Result<(), String> {
            if into.is_some() {
                Err(format!("{cmd} does not produce a result"))
            } else {
                Ok(())
            }
        };

        let instr = match cmd {
            "print" => {
                need(1)?;
                no_into(&into)?;
                Instr::Print(Value::parse(args[0])?)
            }
            "set" => {
                need(2)?;
                no_into(&into)?;
                Instr::Set { var: args[0].to_owned(), value: Value::parse(args[1])? }
            }
            "concat" => {
                need(2)?;
                Instr::Concat {
                    a: Value::parse(args[0])?,
                    b: Value::parse(args[1])?,
                    into: into_var(&into)?,
                }
            }
            "read" => {
                need(1)?;
                Instr::Read { path: Value::parse(args[0])?, into: into_var(&into)? }
            }
            "write" => {
                need(2)?;
                no_into(&into)?;
                Instr::Write { path: Value::parse(args[0])?, data: Value::parse(args[1])? }
            }
            "import" => {
                need(1)?;
                no_into(&into)?;
                Instr::Import { path: Value::parse(args[0])? }
            }
            "getreport" => {
                need(1)?;
                Instr::GetReport { data: Value::parse(args[0])?, into: into_var(&into)? }
            }
            "listen" => {
                need(1)?;
                no_into(&into)?;
                Instr::Listen { addr: Value::parse(args[0])? }
            }
            "accept" => {
                need(0)?;
                no_into(&into)?;
                Instr::Accept
            }
            "connect" => {
                need(1)?;
                no_into(&into)?;
                Instr::Connect { addr: Value::parse(args[0])? }
            }
            "recvmsg" => {
                need(0)?;
                Instr::RecvMsg { into: into_var(&into)? }
            }
            "sendmsg" => {
                need(1)?;
                no_into(&into)?;
                Instr::SendMsg { data: Value::parse(args[0])? }
            }
            "env" => {
                need(1)?;
                Instr::Env { name: Value::parse(args[0])?, into: into_var(&into)? }
            }
            "arg" => {
                need(1)?;
                Instr::Arg {
                    index: args[0].parse().map_err(|_| "bad index".to_owned())?,
                    into: into_var(&into)?,
                }
            }
            "secret" => {
                need(1)?;
                Instr::Secret { name: Value::parse(args[0])?, into: into_var(&into)? }
            }
            "compute" => {
                need(2)?;
                Instr::Compute {
                    kind: ComputeKind::parse(args[0])?,
                    n: args[1].parse().map_err(|_| "bad size".to_owned())?,
                    into: into_var(&into)?,
                }
            }
            "assert_eq" => {
                need(2)?;
                no_into(&into)?;
                Instr::AssertEq { a: Value::parse(args[0])?, b: Value::parse(args[1])? }
            }
            other => return Err(format!("unknown command {other:?}")),
        };
        Ok(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_representative_script() {
        let src = r"
            # the report server of §3.3.1, in SinScript
            listen attack:9000
            accept
            recvmsg -> req
            getreport $req -> report
            sendmsg $report
        ";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.instrs.len(), 5);
        assert_eq!(
            script.instrs[3],
            Instr::GetReport { data: Value::Var("req".into()), into: "report".into() }
        );
    }

    #[test]
    fn parses_values() {
        let s = Script::parse("set x hex:0a0b\nset y text\nset z $x").unwrap();
        assert_eq!(s.instrs[0], Instr::Set { var: "x".into(), value: Value::Bytes(vec![10, 11]) });
        assert_eq!(s.instrs[1], Instr::Set { var: "y".into(), value: Value::Text("text".into()) });
        assert_eq!(s.instrs[2], Instr::Set { var: "z".into(), value: Value::Var("x".into()) });
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let s = Script::parse("\n# comment\n\nprint hi\n").unwrap();
        assert_eq!(s.instrs.len(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let err = Script::parse("print a\nbogus cmd\n").unwrap_err();
        match err {
            RuntimeError::ScriptParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_arity_and_binding_mistakes() {
        assert!(Script::parse("print").is_err());
        assert!(Script::parse("read file").is_err(), "read needs -> var");
        assert!(Script::parse("print x -> y").is_err(), "print has no result");
        assert!(Script::parse("set x").is_err());
        assert!(Script::parse("compute bogus 10 -> x").is_err());
        assert!(Script::parse("set x hex:abc").is_err(), "odd hex");
        assert!(Script::parse("print $").is_err(), "empty var ref");
    }

    #[test]
    fn source_roundtrip() {
        let src = "listen rs:1\naccept\nrecvmsg -> req\ngetreport $req -> report\nsendmsg $report\nset x hex:0aff\ncompute train 12 -> t\nassert_eq $x hex:0aff\narg 2 -> a\nenv HOME -> h\nsecret key -> k\nconcat $a $h -> c\nread f -> d\nwrite f $d\nimport lib\nconnect b:2\nprint $c\n";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.to_source(), src);
        assert_eq!(Script::parse(&script.to_source()).unwrap(), script);
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip_generated_scripts(instrs in arb_script()) {
            let script = Script { instrs };
            let reparsed = Script::parse(&script.to_source()).unwrap();
            proptest::prop_assert_eq!(reparsed, script);
        }
    }

    fn arb_ident() -> impl proptest::strategy::Strategy<Value = String> {
        proptest::string::string_regex("[a-z][a-z0-9_]{0,8}").expect("regex")
    }

    fn arb_value() -> impl proptest::strategy::Strategy<Value = Value> {
        use proptest::prelude::*;
        prop_oneof![
            arb_ident().prop_map(Value::Text),
            proptest::collection::vec(any::<u8>(), 0..8).prop_map(Value::Bytes),
            arb_ident().prop_map(Value::Var),
        ]
    }

    fn arb_script() -> impl proptest::strategy::Strategy<Value = Vec<Instr>> {
        use proptest::prelude::*;
        let instr = prop_oneof![
            arb_value().prop_map(Instr::Print),
            (arb_ident(), arb_value()).prop_map(|(var, value)| Instr::Set { var, value }),
            (arb_value(), arb_value(), arb_ident()).prop_map(|(a, b, into)| Instr::Concat {
                a,
                b,
                into
            }),
            (arb_value(), arb_ident()).prop_map(|(path, into)| Instr::Read { path, into }),
            (arb_value(), arb_value()).prop_map(|(path, data)| Instr::Write { path, data }),
            arb_value().prop_map(|path| Instr::Import { path }),
            (arb_value(), arb_ident()).prop_map(|(data, into)| Instr::GetReport { data, into }),
            Just(Instr::Accept),
            arb_ident().prop_map(|into| Instr::RecvMsg { into }),
            (any::<u8>(), arb_ident())
                .prop_map(|(index, into)| Instr::Arg { index: index as usize, into }),
            (
                proptest::sample::select(vec![
                    ComputeKind::Mix,
                    ComputeKind::Matmul,
                    ComputeKind::Train,
                ]),
                0u64..100,
                arb_ident()
            )
                .prop_map(|(kind, n, into)| Instr::Compute { kind, n, into }),
        ];
        proptest::collection::vec(instr, 0..12)
    }

    #[test]
    fn compute_kinds_parse() {
        let s = Script::parse("compute mix 5 -> a\ncompute matmul 8 -> b\ncompute train 2 -> c")
            .unwrap();
        assert_eq!(s.instrs.len(), 3);
    }
}
