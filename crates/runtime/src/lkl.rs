//! The SGX-LKL-like runtime (§3.3.2): encrypted disk images and a
//! one-shot attest-then-configure *server* flow.
//!
//! `sgx-lkl-run` starts the framework enclave, which opens an
//! attestation/configuration service and waits. The user's
//! `sgx-lkl-ctl` connects, inspects the quote, then sends the
//! configuration (containing the disk encryption key). Only the
//! *framework* is measured; the user application lives on the
//! encrypted disk, so "two different programs running in SGX-LKL will,
//! from SGX attestation perspective, be the same" — the attack surface
//! of §3.3.2.
//!
//! The SinClave hardening gives the framework an instance page; the
//! runtime then demands the connecting controller *prove* it is the
//! pinned verifier (a signature over the channel transcript) before
//! accepting configuration.

use crate::error::RuntimeError;
use crate::exec::{self, ExecContext, ExecOutcome, Reporter, SharedVolume};
use crate::image::ProgramImage;
use crate::scone::PackagedApp;
use crate::script::Script;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sinclave::instance_page::InstancePage;
use sinclave::protocol::Message;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_net::{Network, SecureChannel};
use sinclave_sgx::attributes::Attributes;
use sinclave_sgx::enclave::Enclave;
use sinclave_sgx::quote::{Quote, QuotingEnclave};
use sinclave_sgx::report::ReportData;
use sinclave_sgx::sigstruct::SigStruct;
use sinclave_sgx::PAGE_SIZE;
use std::sync::Arc;

/// Path of the boot entry script on an SGX-LKL disk image.
pub const DISK_ENTRY: &str = "/boot/entry";

/// The framework image every SGX-LKL deployment shares.
#[must_use]
pub fn framework_image(heap_pages: u64) -> ProgramImage {
    ProgramImage::interpreter("sgx-lkl-framework-5.16", heap_pages)
}

/// Invocation parameters of `sgx-lkl-run` (all host-controlled, hence
/// all adversary-controlled in the threat model).
pub struct LklInvocation {
    /// Address the enclave's attestation service binds.
    pub service_addr: String,
    /// The "wireguard" channel key handed to the enclave at start —
    /// the baseline's fatal unmeasured trust anchor.
    pub channel_key: RsaPrivateKey,
    /// The encrypted disk image.
    pub disk: SharedVolume,
    /// RNG seed for the enclave runtime.
    pub rng_seed: u64,
}

/// The running SGX-LKL service: accepts exactly one attest+configure
/// exchange, then boots the disk.
pub struct LklHost {
    /// The platform.
    pub platform: Arc<sinclave_sgx::platform::Platform>,
    /// The quoting enclave.
    pub qe: Arc<QuotingEnclave>,
    /// The network.
    pub network: Network,
}

/// Outcome of a completed SGX-LKL boot.
#[derive(Debug)]
pub struct LklBoot {
    /// The framework enclave.
    pub enclave: Arc<Enclave>,
    /// The configuration received from the controller.
    pub config: AppConfig,
    /// Execution outcome of the disk's entry script.
    pub outcome: ExecOutcome,
}

impl LklHost {
    /// Creates a host.
    #[must_use]
    pub fn new(
        platform: Arc<sinclave_sgx::platform::Platform>,
        qe: Arc<QuotingEnclave>,
        network: Network,
    ) -> Self {
        LklHost { platform, qe, network }
    }

    fn build(
        &self,
        packaged: &PackagedApp,
        page: &[u8; PAGE_SIZE],
        sigstruct: &SigStruct,
    ) -> Result<Arc<Enclave>, RuntimeError> {
        let layout = &packaged.signed.layout;
        let mut builder = layout.build(self.platform.clone(), Attributes::production())?;
        builder.add_page(
            layout.instance_page_offset(),
            page,
            sinclave_sgx::secinfo::SecInfo::read_only(),
            true,
        )?;
        Ok(Arc::new(builder.einit(
            sigstruct,
            None,
            &sinclave_sgx::launch::LaunchControl::Flexible,
        )?))
    }

    /// `sgx-lkl-run` in the **baseline** flavor: build the common
    /// framework enclave, serve one attest+configure exchange with the
    /// invocation-provided channel key, then boot the disk.
    ///
    /// # Errors
    ///
    /// Propagates build, protocol and boot failures.
    pub fn run_baseline(
        &self,
        packaged: &PackagedApp,
        invocation: &LklInvocation,
    ) -> Result<LklBoot, RuntimeError> {
        let enclave =
            self.build(packaged, &InstancePage::common_page(), &packaged.signed.common_sigstruct)?;
        self.serve_and_boot(enclave, invocation, None)
    }

    /// `sgx-lkl-run` in the **SinClave** flavor: the enclave carries an
    /// instance page and will only accept configuration from the
    /// pinned verifier.
    ///
    /// # Errors
    ///
    /// Propagates build, protocol and boot failures.
    pub fn run_sinclave(
        &self,
        packaged: &PackagedApp,
        invocation: &LklInvocation,
        grant: &crate::scone::WireGrant,
    ) -> Result<LklBoot, RuntimeError> {
        let page = InstancePage::new(grant.token, grant.verifier_identity);
        let enclave = self.build(packaged, &page.to_page_bytes(), &grant.sigstruct)?;
        self.serve_and_boot(enclave, invocation, Some(page))
    }

    /// The in-enclave service loop: one challenge → quote → (auth) →
    /// configure exchange, then disk boot.
    fn serve_and_boot(
        &self,
        enclave: Arc<Enclave>,
        invocation: &LklInvocation,
        pinned: Option<InstancePage>,
    ) -> Result<LklBoot, RuntimeError> {
        let mut rng = StdRng::seed_from_u64(invocation.rng_seed ^ 0x1611);
        let listener = self.network.listen(&invocation.service_addr);
        let conn = listener.accept()?;
        let mut chan = SecureChannel::server_accept(conn, &invocation.channel_key, &mut rng)?;

        // Controller sends the nonce, enclave responds with a quote
        // whose reportdata binds the channel transcript.
        let Message::Challenge { nonce } = Message::from_bytes(&chan.recv()?)? else {
            return Err(RuntimeError::ProtocolViolation { context: "lkl challenge" });
        };
        let report_data = ReportData::from_digest(&chan.transcript());
        let report = enclave.ereport(&self.qe.target_info(), report_data);
        let quote = self.qe.quote(&report, nonce)?;
        chan.send(&Message::QuoteResponse { quote: quote.to_bytes() }.to_bytes())?;

        // SinClave: demand proof the peer is the pinned verifier.
        if let Some(page) = &pinned {
            let Message::VerifierAuth { pubkey, signature } = Message::from_bytes(&chan.recv()?)?
            else {
                return Err(RuntimeError::ProtocolViolation { context: "verifier auth" });
            };
            let key = RsaPublicKey::from_bytes(&pubkey)
                .map_err(|_| RuntimeError::ProtocolViolation { context: "verifier key" })?;
            if key.fingerprint() != page.verifier_identity {
                return Err(RuntimeError::VerifierIdentityMismatch);
            }
            key.verify(chan.transcript().as_bytes(), &signature)
                .map_err(|_| RuntimeError::VerifierIdentityMismatch)?;
        }

        // One-shot configuration (SGX-LKL "enforces that attestation
        // and configuration is only done once").
        let Message::ConfigResponse { config } = Message::from_bytes(&chan.recv()?)? else {
            return Err(RuntimeError::ProtocolViolation { context: "lkl configure" });
        };
        let config = AppConfig::from_bytes(&config)?;

        // Boot: verify the disk key, read /boot/entry, execute.
        let Some(key_bytes) = config.volume_key else {
            return Err(RuntimeError::VolumeRejected);
        };
        let key = AeadKey::new(key_bytes);
        invocation.disk.lock().verify_key(&key).map_err(|_| RuntimeError::VolumeRejected)?;
        let entry = invocation.disk.lock().read_file(&key, DISK_ENTRY)?;
        let entry = String::from_utf8(entry)
            .map_err(|_| RuntimeError::ScriptRuntime { reason: "entry not utf-8".into() })?;
        let script = Script::parse(&entry)?;
        let mut ctx = ExecContext {
            config: config.clone(),
            volume: Some((invocation.disk.clone(), key)),
            network: self.network.clone(),
            reporter: Reporter::Enclave {
                enclave: enclave.clone(),
                qe_target: self.qe.target_info(),
            },
            max_steps: 10_000_000,
        };
        let outcome = exec::execute(&script, &mut ctx)?;
        Ok(LklBoot { enclave, config, outcome })
    }
}

/// The user-side controller (`sgx-lkl-ctl`).
pub struct LklController {
    /// Network handle.
    pub network: Network,
    /// Root key of the attestation service (to verify quotes).
    pub attestation_root: RsaPublicKey,
}

/// What the controller verified about the remote enclave.
#[derive(Debug)]
pub struct ControlOutcome {
    /// The attested enclave measurement.
    pub mrenclave: sinclave_sgx::Measurement,
    /// Whether the quote's report data matched the channel binding.
    pub channel_bound: bool,
}

impl LklController {
    /// Attests the service at `addr` and, if the quote satisfies
    /// `accept`, delivers `config`. Returns what was observed.
    ///
    /// This mirrors the paper's user behavior: inspect the quote
    /// (expected framework `MRENCLAVE`, channel binding), then decide
    /// to send the configuration — including the disk key.
    ///
    /// # Errors
    ///
    /// Propagates network and verification failures.
    pub fn attest_and_configure<R: RngCore + ?Sized>(
        &self,
        addr: &str,
        nonce: [u8; 16],
        config: &AppConfig,
        accept: impl Fn(&sinclave_sgx::report::ReportBody) -> bool,
        verifier_auth: Option<&RsaPrivateKey>,
        rng: &mut R,
    ) -> Result<ControlOutcome, RuntimeError> {
        let conn = self.network.connect(addr)?;
        let mut chan = SecureChannel::client_connect(conn, rng)?;
        chan.send(&Message::Challenge { nonce }.to_bytes())?;
        let Message::QuoteResponse { quote } = Message::from_bytes(&chan.recv()?)? else {
            return Err(RuntimeError::ProtocolViolation { context: "quote response" });
        };
        let quote = Quote::from_bytes(&quote)?;
        let body = quote.verify(&self.attestation_root, &nonce).map_err(RuntimeError::Sgx)?;

        let channel_bound = &body.report_data.0[..32] == chan.transcript().as_bytes();
        if !channel_bound || body.is_debug() || !accept(body) {
            return Err(RuntimeError::AttestationDenied {
                reason: "controller rejected quote".into(),
            });
        }

        if let Some(key) = verifier_auth {
            let signature = key
                .sign(chan.transcript().as_bytes())
                .map_err(|_| RuntimeError::ProtocolViolation { context: "auth signing" })?;
            chan.send(
                &Message::VerifierAuth { pubkey: key.public_key().to_bytes(), signature }
                    .to_bytes(),
            )?;
        }

        chan.send(&Message::ConfigResponse { config: config.to_bytes() }.to_bytes())?;
        Ok(ControlOutcome { mrenclave: body.mrenclave, channel_bound })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scone::package_app;
    use parking_lot::Mutex;
    use sinclave::signer::SignerConfig;
    use sinclave::verifier::SingletonIssuer;
    use sinclave_fs::Volume;
    use sinclave_sgx::attestation::AttestationService;
    use sinclave_sgx::platform::Platform;

    struct World {
        host: LklHost,
        controller: LklController,
        packaged: PackagedApp,
        signer_key: RsaPrivateKey,
    }

    fn world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, 1024).unwrap();
        let platform = Arc::new(Platform::new(&mut rng));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap(),
        );
        let network = Network::new();
        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let packaged =
            package_app(&framework_image(4), &signer_key, &SignerConfig::default()).unwrap();
        World {
            host: LklHost::new(platform, qe, network.clone()),
            controller: LklController {
                network,
                attestation_root: service.root_public_key().clone(),
            },
            packaged,
            signer_key,
        }
    }

    fn disk(key_bytes: [u8; 32], entry: &str) -> SharedVolume {
        let key = AeadKey::new(key_bytes);
        let mut vol = Volume::format(&key, "lkl-disk");
        vol.write_file(&key, DISK_ENTRY, entry.as_bytes()).unwrap();
        vol.write_file(&key, "/data/input", b"disk data").unwrap();
        Arc::new(Mutex::new(vol))
    }

    #[test]
    fn baseline_boot_end_to_end() {
        let w = world(1);
        let mut rng = StdRng::seed_from_u64(11);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let disk_key = [7u8; 32];
        let invocation = LklInvocation {
            service_addr: "lkl:7000".into(),
            channel_key,
            disk: disk(disk_key, "read /data/input -> d\nprint $d"),
            rng_seed: 1,
        };
        let expected = w.packaged.signed.common_measurement();
        let controller = w.controller;
        let config = AppConfig { volume_key: Some(disk_key), ..AppConfig::default() };
        let ctl = std::thread::spawn(move || {
            // Give the service a moment to bind.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut rng = StdRng::seed_from_u64(12);
            controller
                .attest_and_configure(
                    "lkl:7000",
                    [9; 16],
                    &config,
                    |body| body.mrenclave == expected,
                    None,
                    &mut rng,
                )
                .unwrap()
        });
        let boot = w.host.run_baseline(&w.packaged, &invocation).unwrap();
        let outcome = ctl.join().unwrap();
        assert_eq!(boot.outcome.stdout, vec!["disk data"]);
        assert!(outcome.channel_bound);
        assert_eq!(outcome.mrenclave, w.packaged.signed.common_measurement());
    }

    #[test]
    fn baseline_wrong_disk_key_refuses_boot() {
        let w = world(2);
        let mut rng = StdRng::seed_from_u64(21);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let invocation = LklInvocation {
            service_addr: "lkl:7001".into(),
            channel_key,
            disk: disk([7u8; 32], "print hi"),
            rng_seed: 2,
        };
        let expected = w.packaged.signed.common_measurement();
        let controller = w.controller;
        // Config carries the wrong key.
        let config = AppConfig { volume_key: Some([8u8; 32]), ..AppConfig::default() };
        let ctl = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut rng = StdRng::seed_from_u64(22);
            controller
                .attest_and_configure(
                    "lkl:7001",
                    [1; 16],
                    &config,
                    |body| body.mrenclave == expected,
                    None,
                    &mut rng,
                )
                .unwrap()
        });
        let err = w.host.run_baseline(&w.packaged, &invocation).unwrap_err();
        ctl.join().unwrap();
        assert_eq!(err, RuntimeError::VolumeRejected);
    }

    #[test]
    fn sinclave_boot_with_verifier_auth() {
        let w = world(3);
        let mut rng = StdRng::seed_from_u64(31);
        // The user's verifier identity doubles as auth key.
        let verifier_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let issuer =
            SingletonIssuer::new(w.signer_key.clone(), verifier_key.public_key().fingerprint());
        let grant_raw = issuer
            .issue(&mut rng, &w.packaged.signed.common_sigstruct, &w.packaged.signed.base_hash)
            .unwrap();
        let grant = crate::scone::WireGrant {
            token: grant_raw.token,
            verifier_identity: grant_raw.verifier_identity,
            sigstruct: grant_raw.sigstruct.clone(),
        };

        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let disk_key = [5u8; 32];
        let invocation = LklInvocation {
            service_addr: "lkl:7002".into(),
            channel_key,
            disk: disk(disk_key, "print booted"),
            rng_seed: 3,
        };
        let expected = grant_raw.expected_mrenclave;
        let controller = w.controller;
        let config = AppConfig { volume_key: Some(disk_key), ..AppConfig::default() };
        let ctl = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut rng = StdRng::seed_from_u64(32);
            controller
                .attest_and_configure(
                    "lkl:7002",
                    [2; 16],
                    &config,
                    |body| body.mrenclave == expected,
                    Some(&verifier_key),
                    &mut rng,
                )
                .unwrap()
        });
        let boot = w.host.run_sinclave(&w.packaged, &invocation, &grant).unwrap();
        let outcome = ctl.join().unwrap();
        assert_eq!(boot.outcome.stdout, vec!["booted"]);
        assert_eq!(outcome.mrenclave, expected);
        // The singleton measurement is unique, not the framework's.
        assert_ne!(outcome.mrenclave, w.packaged.signed.common_measurement());
    }

    #[test]
    fn sinclave_rejects_unauthenticated_controller() {
        let w = world(4);
        let mut rng = StdRng::seed_from_u64(41);
        let verifier_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let adversary_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let issuer =
            SingletonIssuer::new(w.signer_key.clone(), verifier_key.public_key().fingerprint());
        let grant_raw = issuer
            .issue(&mut rng, &w.packaged.signed.common_sigstruct, &w.packaged.signed.base_hash)
            .unwrap();
        let grant = crate::scone::WireGrant {
            token: grant_raw.token,
            verifier_identity: grant_raw.verifier_identity,
            sigstruct: grant_raw.sigstruct.clone(),
        };
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let invocation = LklInvocation {
            service_addr: "lkl:7003".into(),
            channel_key,
            disk: disk([5u8; 32], "print booted"),
            rng_seed: 4,
        };
        let expected = grant_raw.expected_mrenclave;
        let controller = w.controller;
        let config = AppConfig { volume_key: Some([5u8; 32]), ..AppConfig::default() };
        let ctl = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut rng = StdRng::seed_from_u64(42);
            // The adversary tries to configure the singleton with
            // their own auth key.
            let _ = controller.attest_and_configure(
                "lkl:7003",
                [3; 16],
                &config,
                |body| body.mrenclave == expected,
                Some(&adversary_key),
                &mut rng,
            );
        });
        let err = w.host.run_sinclave(&w.packaged, &invocation, &grant).unwrap_err();
        ctl.join().unwrap();
        assert_eq!(err, RuntimeError::VerifierIdentityMismatch);
    }
}
