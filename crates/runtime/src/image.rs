//! Program images — the *measured* content of an application enclave.
//!
//! An image plays the role of the ELF binary SCONE signs: it contains
//! the runtime/interpreter identity and, optionally, an embedded entry
//! script (statically linked application). For interpreter-style
//! deployments — the paper's Python/NodeJS examples — the image holds
//! *only* the interpreter; the application script is read from an
//! encrypted volume at runtime. Two Python applications therefore run
//! in enclaves with *identical* `MRENCLAVE`s (§3.3.1: "any Python
//! program utilizing the same Python interpreter in SCONE uses an
//! identical enclave"), which is the root of the reuse attack.

use crate::error::RuntimeError;
use sinclave::layout::EnclaveLayout;

/// Which attestation behavior is compiled into the (measured) runtime.
///
/// This is a property of the *binary*, not of the host invocation: a
/// SinClave-aware runtime, finding a zeroed instance page, runs as an
/// unconfigurable common enclave; finding a singleton page, it attests
/// exclusively to the pinned verifier. A baseline runtime attests to
/// whatever verifier the starter names — the paper's vulnerable
/// configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeFlavor {
    /// Unmodified SCONE behavior (vulnerable to the reuse attack).
    Baseline,
    /// SinClave-aware behavior (§4.4).
    Sinclave,
}

/// Magic prefix of serialized images.
const MAGIC: &[u8; 8] = b"SINIMG1\0";

/// A program image: what the signer measures and the starter loads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramImage {
    /// Human-readable name ("python-3.8", "nodejs-14", …).
    pub name: String,
    /// Version tag of the embedded runtime/interpreter.
    pub runtime_version: String,
    /// Entry script compiled into the image (`None` for
    /// interpreter-style images whose entry comes from configuration).
    pub embedded_entry: Option<String>,
    /// Heap pages to map (unmeasured, zeroed).
    pub heap_pages: u64,
    /// Padding to emulate realistic binary sizes (measured zeros).
    pub rodata_padding: usize,
    /// The measured attestation behavior of the runtime.
    pub flavor: RuntimeFlavor,
}

impl ProgramImage {
    /// A minimal interpreter image (entry provided by configuration).
    #[must_use]
    pub fn interpreter(name: &str, heap_pages: u64) -> Self {
        ProgramImage {
            name: name.to_owned(),
            runtime_version: "sinrt-1.0".to_owned(),
            embedded_entry: None,
            heap_pages,
            rodata_padding: 0,
            flavor: RuntimeFlavor::Baseline,
        }
    }

    /// A statically-linked image with an embedded entry script.
    #[must_use]
    pub fn with_entry(name: &str, entry_script: &str, heap_pages: u64) -> Self {
        ProgramImage {
            name: name.to_owned(),
            runtime_version: "sinrt-1.0".to_owned(),
            embedded_entry: Some(entry_script.to_owned()),
            heap_pages,
            rodata_padding: 0,
            flavor: RuntimeFlavor::Baseline,
        }
    }

    /// Returns a copy whose measured runtime is SinClave-aware.
    #[must_use]
    pub fn sinclave_aware(mut self) -> Self {
        self.flavor = RuntimeFlavor::Sinclave;
        self
    }

    /// Returns a copy padded to roughly `bytes` of measured content
    /// (for size-sensitive benchmarks like Fig. 6/7a).
    #[must_use]
    pub fn padded_to(mut self, bytes: usize) -> Self {
        self.rodata_padding = bytes.saturating_sub(self.code_bytes().len());
        self
    }

    /// Serializes the measured code segment.
    #[must_use]
    pub fn code_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let put = |out: &mut Vec<u8>, s: &[u8]| {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s);
        };
        put(&mut out, self.name.as_bytes());
        put(&mut out, self.runtime_version.as_bytes());
        match &self.embedded_entry {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                put(&mut out, e.as_bytes());
            }
        }
        out.push(match self.flavor {
            RuntimeFlavor::Baseline => 0,
            RuntimeFlavor::Sinclave => 1,
        });
        out.extend_from_slice(&self.heap_pages.to_be_bytes());
        out.extend_from_slice(&(self.rodata_padding as u64).to_be_bytes());
        out.resize(out.len() + self.rodata_padding, 0);
        out
    }

    /// Parses an image from its measured code segment (what the
    /// in-enclave runtime does to find its own parameters).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ProtocolViolation`] for malformed
    /// bytes.
    pub fn from_code_bytes(bytes: &[u8]) -> Result<Self, RuntimeError> {
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], RuntimeError> {
            if cursor.len() < n {
                return Err(RuntimeError::ProtocolViolation { context: "program image" });
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        fn get_string(cursor: &mut &[u8]) -> Result<String, RuntimeError> {
            let len = u32::from_be_bytes(take(cursor, 4)?.try_into().expect("4")) as usize;
            String::from_utf8(take(cursor, len)?.to_vec())
                .map_err(|_| RuntimeError::ProtocolViolation { context: "program image" })
        }

        let err = RuntimeError::ProtocolViolation { context: "program image" };
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(err);
        }
        let mut cursor = &bytes[8..];
        let name = get_string(&mut cursor)?;
        let runtime_version = get_string(&mut cursor)?;
        let embedded_entry = match take(&mut cursor, 1)?[0] {
            0 => None,
            1 => Some(get_string(&mut cursor)?),
            _ => return Err(err),
        };
        let flavor = match take(&mut cursor, 1)?[0] {
            0 => RuntimeFlavor::Baseline,
            1 => RuntimeFlavor::Sinclave,
            _ => return Err(err),
        };
        let heap_pages = u64::from_be_bytes(take(&mut cursor, 8)?.try_into().expect("8"));
        let rodata_padding =
            u64::from_be_bytes(take(&mut cursor, 8)?.try_into().expect("8")) as usize;
        Ok(ProgramImage {
            name,
            runtime_version,
            embedded_entry,
            heap_pages,
            rodata_padding,
            flavor,
        })
    }

    /// The enclave layout for this image: code at 0, heap above, one
    /// instance-page slot on top (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates layout validation errors.
    pub fn layout(&self) -> Result<EnclaveLayout, RuntimeError> {
        Ok(EnclaveLayout::for_program(&self.code_bytes(), self.heap_pages)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_interpreter_and_entry_images() {
        let a = ProgramImage::interpreter("python-3.8", 8);
        let parsed = ProgramImage::from_code_bytes(&a.code_bytes()).unwrap();
        assert_eq!(parsed, a);

        let b = ProgramImage::with_entry("hello", "print hi", 2);
        assert_eq!(ProgramImage::from_code_bytes(&b.code_bytes()).unwrap(), b);
    }

    #[test]
    fn identical_interpreters_have_identical_layout_measurements() {
        // The attack precondition: two deployments of the same
        // interpreter are indistinguishable at the measurement level.
        let a = ProgramImage::interpreter("python-3.8", 8);
        let b = ProgramImage::interpreter("python-3.8", 8);
        let ma = a.layout().unwrap().measure_base().unwrap().finalize();
        let mb = b.layout().unwrap().measure_base().unwrap().finalize();
        assert_eq!(ma, mb);
    }

    #[test]
    fn flavor_is_measured() {
        // Switching the runtime flavor changes the binary and thus the
        // measurement: an adversary cannot "downgrade" a SinClave
        // runtime to baseline behavior without detection.
        let baseline = ProgramImage::interpreter("python-3.8", 8);
        let aware = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
        assert_ne!(baseline.code_bytes(), aware.code_bytes());
        let parsed = ProgramImage::from_code_bytes(&aware.code_bytes()).unwrap();
        assert_eq!(parsed.flavor, RuntimeFlavor::Sinclave);
    }

    #[test]
    fn different_versions_differ() {
        let a = ProgramImage::interpreter("python-3.8", 8);
        let mut b = a.clone();
        b.runtime_version = "sinrt-1.1".to_owned();
        assert_ne!(a.code_bytes(), b.code_bytes());
    }

    #[test]
    fn padding_grows_code() {
        let img = ProgramImage::interpreter("p", 1).padded_to(100_000);
        assert!(img.code_bytes().len() >= 100_000);
        let parsed = ProgramImage::from_code_bytes(&img.code_bytes()).unwrap();
        assert_eq!(parsed.rodata_padding, img.rodata_padding);
    }

    #[test]
    fn malformed_rejected() {
        assert!(ProgramImage::from_code_bytes(b"short").is_err());
        assert!(ProgramImage::from_code_bytes(&[0u8; 64]).is_err());
    }

    #[test]
    fn layout_reserves_instance_page() {
        let img = ProgramImage::interpreter("p", 4);
        let layout = img.layout().unwrap();
        assert_eq!(
            layout.instance_page_offset(),
            layout.enclave_size - sinclave_sgx::PAGE_SIZE as u64
        );
    }
}
