//! Shared fixtures for the figure-reproduction benchmarks.
//!
//! Every bench and the `experiments` harness build their worlds
//! through this module so that Criterion runs and the printed
//! paper-vs-measured tables measure exactly the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::signer::SignerConfig;
use sinclave::AppConfig;
use sinclave_cas::policy::{PolicyMode, SessionPolicy};
use sinclave_cas::store::CasStore;
use sinclave_cas::CasServer;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_net::Network;
use sinclave_runtime::scone::{package_app, PackagedApp, SconeHost};
use sinclave_runtime::ProgramImage;
use sinclave_sgx::attestation::AttestationService;
use sinclave_sgx::platform::Platform;
use sinclave_sgx::quote::QuotingEnclave;
use std::sync::Arc;

/// RSA modulus size used for the signer key, matching the paper's
/// SGX SigStruct RSA-3072.
pub const SIGNER_KEY_BITS: usize = 3072;
/// Smaller keys for infrastructure whose latency is not under test.
pub const INFRA_KEY_BITS: usize = 1024;

/// A complete benchmark world.
pub struct BenchWorld {
    /// The machine.
    pub host: SconeHost,
    /// The verifier.
    pub cas: Arc<CasServer>,
    /// The network.
    pub network: Network,
    /// The signer key (RSA-3072).
    pub signer_key: RsaPrivateKey,
}

impl BenchWorld {
    /// Builds a world with an RSA-3072 signer and a large EPC.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, INFRA_KEY_BITS).expect("service");
        // 4 GiB EPC so Fig. 8's heap sweep fits.
        let platform = Arc::new(Platform::with_epc_pages(&mut rng, 4 << 30 >> 12));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, INFRA_KEY_BITS)
                .expect("qe"),
        );
        let network = Network::new();
        let host = SconeHost::new(platform, qe, network.clone());

        let signer_key = RsaPrivateKey::generate(&mut rng, SIGNER_KEY_BITS).expect("signer key");
        let channel_key = RsaPrivateKey::generate(&mut rng, INFRA_KEY_BITS).expect("channel");
        let cas = CasServer::new(
            channel_key,
            signer_key.clone(),
            service.root_public_key().clone(),
            CasStore::create(AeadKey::new([0xbe; 32])),
        );
        BenchWorld { host, cas, network, signer_key }
    }

    /// Packages an image under the world's signer.
    #[must_use]
    pub fn package(&self, image: &ProgramImage) -> PackagedApp {
        package_app(image, &self.signer_key, &SignerConfig::default()).expect("package")
    }

    /// Registers a policy delivering `config` for `config_id`.
    pub fn add_policy(
        &self,
        config_id: &str,
        packaged: &PackagedApp,
        mode: PolicyMode,
        config: AppConfig,
    ) {
        self.cas
            .add_policy(SessionPolicy {
                config_id: config_id.to_owned(),
                expected_common: packaged.signed.common_measurement(),
                expected_mrsigner: self.signer_key.public_key().fingerprint(),
                min_isv_svn: 0,
                allow_debug: false,
                mode,
                config,
            })
            .expect("policy");
    }
}

/// Formats a byte count like the paper's axes (2 KB, 1 MB, …).
#[must_use]
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

/// A deterministic pseudo-random buffer for hashing benchmarks.
#[must_use]
pub fn hash_buffer(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = 0x12345678_9abcdef0u64;
    while out.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_buffer_is_deterministic() {
        assert_eq!(hash_buffer(100), hash_buffer(100));
        assert_eq!(hash_buffer(100).len(), 100);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(2048), "2 KB");
        assert_eq!(human_size(8 << 20), "8 MB");
    }
}
