//! Shared fixtures for the figure-reproduction benchmarks.
//!
//! Every bench and the `experiments` harness build their worlds
//! through this module so that Criterion runs and the printed
//! paper-vs-measured tables measure exactly the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::signer::SignerConfig;
use sinclave::AppConfig;
use sinclave_cas::policy::{PolicyMode, SessionPolicy};
use sinclave_cas::store::CasStore;
use sinclave_cas::CasServer;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_net::Network;
use sinclave_runtime::scone::{package_app, PackagedApp, SconeHost};
use sinclave_runtime::ProgramImage;
use sinclave_sgx::attestation::AttestationService;
use sinclave_sgx::platform::Platform;
use sinclave_sgx::quote::QuotingEnclave;
use std::sync::Arc;

/// RSA modulus size used for the signer key, matching the paper's
/// SGX SigStruct RSA-3072.
pub const SIGNER_KEY_BITS: usize = 3072;
/// Smaller keys for infrastructure whose latency is not under test.
pub const INFRA_KEY_BITS: usize = 1024;

/// A complete benchmark world.
pub struct BenchWorld {
    /// The machine.
    pub host: SconeHost,
    /// The verifier.
    pub cas: Arc<CasServer>,
    /// The network.
    pub network: Network,
    /// The signer key (RSA-3072).
    pub signer_key: RsaPrivateKey,
    /// The fleet channel key (shared by every replica; its fingerprint
    /// is the replication pin).
    pub channel_key: RsaPrivateKey,
    /// The attestation service's root public key.
    pub attestation_root: RsaPublicKey,
}

impl BenchWorld {
    /// Builds a world with an RSA-3072 signer and a large EPC.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, INFRA_KEY_BITS).expect("service");
        // 4 GiB EPC so Fig. 8's heap sweep fits.
        let platform = Arc::new(Platform::with_epc_pages(&mut rng, 4 << 30 >> 12));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, INFRA_KEY_BITS)
                .expect("qe"),
        );
        let network = Network::new();
        let host = SconeHost::new(platform, qe, network.clone());

        let signer_key = RsaPrivateKey::generate(&mut rng, SIGNER_KEY_BITS).expect("signer key");
        let channel_key = RsaPrivateKey::generate(&mut rng, INFRA_KEY_BITS).expect("channel");
        let attestation_root = service.root_public_key().clone();
        let cas = CasServer::new(
            channel_key.clone(),
            signer_key.clone(),
            attestation_root.clone(),
            CasStore::create(AeadKey::new([0xbe; 32])),
        );
        BenchWorld { host, cas, network, signer_key, channel_key, attestation_root }
    }

    /// Builds a follower replica on a fresh store, sharing the fleet's
    /// channel key, signer key and attestation root.
    #[must_use]
    pub fn new_replica(&self) -> Arc<CasServer> {
        CasServer::new(
            self.channel_key.clone(),
            self.signer_key.clone(),
            self.attestation_root.clone(),
            CasStore::create(AeadKey::new([0xbf; 32])),
        )
    }

    /// Packages an image under the world's signer.
    #[must_use]
    pub fn package(&self, image: &ProgramImage) -> PackagedApp {
        package_app(image, &self.signer_key, &SignerConfig::default()).expect("package")
    }

    /// Registers a policy delivering `config` for `config_id`.
    pub fn add_policy(
        &self,
        config_id: &str,
        packaged: &PackagedApp,
        mode: PolicyMode,
        config: AppConfig,
    ) {
        self.cas
            .add_policy(SessionPolicy {
                config_id: config_id.to_owned(),
                expected_common: packaged.signed.common_measurement(),
                expected_mrsigner: self.signer_key.public_key().fingerprint(),
                min_isv_svn: 0,
                allow_debug: false,
                mode,
                config,
            })
            .expect("policy");
    }
}

/// Which serving path [`fan_in_burst`] drives, with its thread budget.
pub enum ServePath {
    /// Thread-per-connection pool. For a mostly-idle fan-in the pool
    /// *must* be sized `workers == connections`: an undersized pool
    /// deadlocks the burst, because every session stays open until the
    /// end and a pool worker is pinned to its connection for that
    /// connection's whole life.
    Pool {
        /// Worker-thread count.
        workers: usize,
    },
    /// The readiness-driven reactor: `loops + compute` threads serve
    /// every connection.
    Reactor {
        /// Event-loop thread count.
        loops: usize,
        /// Compute-pool thread count.
        compute: usize,
    },
}

impl ServePath {
    /// Serving threads this path spends.
    #[must_use]
    pub fn serving_threads(&self) -> usize {
        match self {
            ServePath::Pool { workers } => *workers,
            ServePath::Reactor { loops, compute } => loops + compute,
        }
    }
}

/// Client threads [`fan_in_burst`] multiplexes its connections over —
/// deliberately few, so huge fan-ins don't cost one OS thread per
/// client and the interesting thread budget is the *server's*.
pub const FAN_IN_CLIENT_THREADS: usize = 8;

/// Drives `connections` mostly-idle concurrent sessions against a CAS
/// at `addr`: every session handshakes, then sends `pings` pings (each
/// awaited) interleaved across its thread's whole batch, and every
/// session stays open until the batch finishes — so at any moment most
/// connections are idle, the high-fan-in regime the reactor exists
/// for. Callers should install generous middleware timeouts first
/// (idle sessions are the point, reaping them isn't).
pub fn fan_in_burst(
    world: &BenchWorld,
    addr: &str,
    connections: usize,
    pings: usize,
    path: &ServePath,
    seed: u64,
) {
    use sinclave::protocol::Message;
    use sinclave_net::SecureChannel;

    let server = match *path {
        ServePath::Pool { workers } => {
            assert!(workers >= connections, "undersized pool deadlocks a mostly-idle burst");
            world.cas.serve_with_workers(&world.network, addr, connections, seed, workers)
        }
        ServePath::Reactor { loops, compute } => {
            world.cas.serve_reactor_with(&world.network, addr, connections, seed, loops, compute)
        }
    };
    let threads = FAN_IN_CLIENT_THREADS.min(connections.max(1));
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let quota = connections / threads + usize::from(t < connections % threads);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xfa9 ^ ((t as u64) << 32));
                let mut chans = Vec::with_capacity(quota);
                for _ in 0..quota {
                    let conn = world.network.connect(addr).expect("connect");
                    // Only the server's deadlines are under test;
                    // clients wait out crypto serialization patiently.
                    conn.set_recv_timeout(Some(std::time::Duration::from_secs(600)));
                    chans.push(SecureChannel::client_connect(conn, &mut rng).expect("handshake"));
                }
                for _ in 0..pings {
                    for chan in &mut chans {
                        chan.send(&Message::Ping.to_bytes()).expect("send");
                    }
                    for chan in &mut chans {
                        let reply =
                            Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
                        assert_eq!(reply, Message::Pong);
                    }
                }
            });
        }
    });
    server.join().expect("serve");
}

/// Formats a byte count like the paper's axes (2 KB, 1 MB, …).
#[must_use]
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

/// A deterministic pseudo-random buffer for hashing benchmarks.
#[must_use]
pub fn hash_buffer(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = 0x12345678_9abcdef0u64;
    while out.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_buffer_is_deterministic() {
        assert_eq!(hash_buffer(100), hash_buffer(100));
        assert_eq!(hash_buffer(100).len(), 100);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(2048), "2 KB");
        assert_eq!(human_size(8 << 20), "8 MB");
    }
}
