//! The experiments harness: regenerates every figure of the paper's
//! evaluation (§5) and prints measured values next to the paper's
//! reported ones.
//!
//! Run with: `cargo run --release -p sinclave-bench --bin experiments`
//!
//! Absolute numbers differ from the paper (their Xeon E-2288G +
//! optimized assembly vs. this from-scratch pure-Rust stack); what
//! must hold — and is printed for inspection — is the *shape*: who is
//! faster, by roughly what factor, and which costs are constant.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::instance_page::InstancePage;
use sinclave::protocol::Message;
use sinclave::signer::{sign_enclave, sign_enclave_baseline, SignerConfig};
use sinclave_bench::{hash_buffer, human_size, BenchWorld};
use sinclave_cas::policy::PolicyMode;
use sinclave_crypto::sha256::{self, Sha256};
use sinclave_net::SecureChannel;
use sinclave_runtime::scone::{run_native, StartOptions};
use sinclave_runtime::workload::{self, Workload};
use sinclave_runtime::ProgramImage;
use sinclave_sgx::sigstruct::{SigStruct, SigStructBody};
use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations, returning the mean.
fn time<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    // One warmup.
    let _ = f();
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters
}

fn mbps(bytes: usize, d: Duration) -> f64 {
    bytes as f64 / d.as_secs_f64() / 1e6
}

fn fig6() {
    println!("== Figure 6: SHA-256 throughput (paper: Ring ≈405 MB/s, SinClave ≈180 MB/s,");
    println!("==           SinClave-BaseHash ≈ SinClave, better at small buffers)");
    println!(
        "{:>8}  {:>18} {:>18} {:>22}",
        "buffer", "ring-subst MB/s", "sinclave MB/s", "sinclave-basehash MB/s"
    );
    for size in [2 << 10, 16 << 10, 128 << 10, 1 << 20, 8 << 20] {
        let buf = hash_buffer(size);
        let iters = ((64 << 20) / size.max(1)) as u32;
        let ring = time(iters.clamp(8, 4096), || sha256::fast::digest(&buf));
        let sin = time(iters.clamp(8, 4096), || {
            let mut h = Sha256::new();
            h.update(&buf);
            h.finalize()
        });
        let base = time(iters.clamp(8, 4096), || {
            let mut h = Sha256::new();
            h.update(&buf);
            h.export_state().expect("aligned").encode()
        });
        println!(
            "{:>8}  {:>18.0} {:>18.0} {:>22.0}",
            human_size(size),
            mbps(size, ring),
            mbps(size, sin),
            mbps(size, base)
        );
    }

    // Constant-time finalization (paper: constant 32 µs).
    let layout =
        sinclave::layout::EnclaveLayout::for_program(&hash_buffer(256 << 10), 64).expect("layout");
    let m = layout.measure_base().expect("measure");
    let bh = sinclave::BaseEnclaveHash::new(
        m.export_state(),
        layout.enclave_size,
        layout.instance_page_offset(),
    );
    let page = InstancePage::new(sinclave::AttestationToken([7; 32]), sha256::digest(b"verifier"));
    let fin = time(2048, || bh.singleton_measurement(&page).expect("finalize"));
    println!("base-hash finalization to MRENCLAVE: {fin:?}  (paper: constant 32 µs)");
    println!();
}

fn fig7a(world: &BenchWorld) {
    println!("== Figure 7a: compilation duration (paper: native 0.033 s, baseline 1.52 s,");
    println!("==            SinClave 6.26 s — SinClave ≈ 4x baseline from less-optimized");
    println!("==            iterative hashing; this stack shares one hash core, so the");
    println!("==            expected shape is: native ≪ baseline ≈ SinClave)");
    let image = ProgramImage::with_entry("minimal-c", "print 0", 4).padded_to(512 << 10);
    let layout = image.layout().expect("layout");
    let config = SignerConfig::default();
    let native = time(32, || image.code_bytes());
    let baseline =
        time(16, || sign_enclave_baseline(&layout, &world.signer_key, &config).expect("sign"));
    let sinclave = time(16, || sign_enclave(&layout, &world.signer_key, &config).expect("sign"));
    println!("native:   {native:>12.2?}   (paper 0.033 s)");
    println!("baseline: {baseline:>12.2?}   (paper 1.52 s)");
    println!("sinclave: {sinclave:>12.2?}   (paper 6.26 s)");
    println!();
}

fn fig7b(world: &BenchWorld) {
    println!("== Figure 7b: SigStruct signing and verification (paper: sign 4.9 ms,");
    println!("==            verify-correct 0.4 ms, verify-erroneous = verify-correct)");
    let body = SigStructBody {
        enclave_hash: sinclave_sgx::Measurement(sha256::Digest([0x5a; 32])),
        attributes: sinclave_sgx::attributes::Attributes::production(),
        attributes_mask: sinclave_sgx::attributes::Attributes { flags: u64::MAX, xfrm: u64::MAX },
        isv_prod_id: 1,
        isv_svn: 1,
        date: 20230405,
        vendor: 0,
    };
    let signed = SigStruct::sign(body.clone(), &world.signer_key).expect("sign");
    let corrupt = {
        let mut bytes = signed.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        SigStruct::from_bytes(&bytes).expect("parse")
    };
    let sign = time(32, || SigStruct::sign(body.clone(), &world.signer_key).expect("sign"));
    let verify_c = time(256, || signed.verify().expect("ok"));
    let verify_e = time(256, || assert!(corrupt.verify().is_err()));
    println!("sign:             {sign:>12.2?}   (paper 4.9 ms)");
    println!("verify correct:   {verify_c:>12.2?}   (paper 0.4 ms)");
    println!("verify erroneous: {verify_e:>12.2?}   (paper ≈ verify correct)");
    println!();
}

fn fig7c(world: &BenchWorld) {
    println!("== Figure 7c: singleton page retrieval (paper: total ≈26.3 ms; O/C 3.74 ms,");
    println!("==            verify 0.4 ms, expected-measurement 32 µs, signing 4.93 ms,");
    println!("==            rest = CAS miscellaneous)");
    let image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let packaged = world.package(&image);
    world.add_policy("fig7c", &packaged, PolicyMode::Singleton, Default::default());

    let cas = world.cas.clone();
    let _ping_server = cas.serve(&world.network, "cas:x7c", 1_000_000, 77);
    let mut session = 0u64;
    let open_close = time(64, || {
        session += 1;
        let conn = world.network.connect("cas:x7c").expect("connect");
        let mut rng = StdRng::seed_from_u64(session);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
        chan.send(&Message::Ping.to_bytes()).expect("send");
        assert!(matches!(
            Message::from_bytes(&chan.recv().expect("recv")).expect("decode"),
            Message::Pong
        ));
    });
    let verify = time(256, || packaged.signed.common_sigstruct.verify().expect("ok"));
    let page = InstancePage::new(sinclave::AttestationToken([9; 32]), world.cas.identity());
    let expected =
        time(2048, || packaged.signed.base_hash.singleton_measurement(&page).expect("measure"));
    let mut rng = StdRng::seed_from_u64(1);
    let issue = time(32, || {
        world
            .cas
            .issuer()
            .issue(&mut rng, &packaged.signed.common_sigstruct, &packaged.signed.base_hash)
            .expect("grant")
    });
    let mut session = 10_000u64;
    let total = time(32, || {
        session += 1;
        let conn = world.network.connect("cas:x7c").expect("connect");
        let mut rng = StdRng::seed_from_u64(session);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
        chan.send(
            &Message::GrantRequest {
                common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                base_hash: packaged.signed.base_hash.encode().to_vec(),
            }
            .to_bytes(),
        )
        .expect("send");
        assert!(matches!(
            Message::from_bytes(&chan.recv().expect("recv")).expect("decode"),
            Message::GrantResponse { .. }
        ));
    });
    println!("connect open/close:    {open_close:>12.2?}   (paper 3.74 ms)");
    println!("verify sigstruct:      {verify:>12.2?}   (paper 0.4 ms)");
    println!("expected measurement:  {expected:>12.2?}   (paper 32 µs)");
    println!("issue grant (offline): {issue:>12.2?}   (paper signing 4.93 ms + misc)");
    println!("total round trip:      {total:>12.2?}   (paper 26.3 ms)");
    println!();
}

fn fig8() {
    println!("== Figure 8: program execution vs heap size (paper: attested overhead");
    println!("==           baseline 36.3–65.9 ms vs SinClave 132–144.2 ms, rising");
    println!("==           slightly with heap; sim < hw < hw+attest)");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>16} {:>16}",
        "heap", "sim", "hw/base", "hw/sincl", "attest/base", "attest/sincl"
    );
    for heap_mib in [32u64, 128, 512, 2048] {
        let iters = if heap_mib >= 512 { 3 } else { 8 };
        let image = ProgramImage::with_entry("minimal-c", "print 0", heap_mib * 256);
        let network = sinclave_net::Network::new();
        let sim = time(iters, || run_native(&image, &network).expect("run"));

        let mut cells = Vec::new();
        for sinclave_mode in [false, true] {
            let world = BenchWorld::new(0x800 + heap_mib + sinclave_mode as u64);
            let img = if sinclave_mode { image.clone().sinclave_aware() } else { image.clone() };
            let packaged = world.package(&img);
            let hw = time(iters, || world.host.start_unattested(&packaged).expect("run"));

            world.add_policy(
                "fig8",
                &packaged,
                PolicyMode::Either,
                sinclave::AppConfig { entry: "embedded".into(), ..Default::default() },
            );
            let cas = world.cas.clone();
            let _server = cas.serve(&world.network, "cas:x8", 1_000_000, heap_mib);
            let mut i = 0u64;
            let attested = time(iters, || {
                i += 1;
                let opts = StartOptions::new("cas:x8", "fig8").with_seed(i);
                if sinclave_mode {
                    world.host.start_sinclave(&packaged, &opts).expect("run")
                } else {
                    world.host.start_baseline(&packaged, &opts).expect("run")
                }
            });
            cells.push((hw, attested));
        }
        println!(
            "{:>8} {:>12.2?} {:>14.2?} {:>14.2?} {:>16.2?} {:>16.2?}",
            format!("{heap_mib} MB"),
            sim,
            cells[0].0,
            cells[1].0,
            cells[0].1,
            cells[1].1
        );
    }
    println!();
}

fn fig9() {
    println!("== Figure 9: macro workloads, attested end to end (paper overheads:");
    println!("==           Python 1.03 %, OpenVINO 2.49 %, PyTorch 13.2 %)");
    println!("{:>10} {:>14} {:>14} {:>10}", "workload", "baseline", "sinclave", "overhead");
    // Scales chosen so the baseline runs last from ≈0.5 s to ≈2 s, as
    // in the paper's short-to-long workload progression; the absolute
    // overhead is the fixed singleton-retrieval cost.
    type WorkloadFactory = fn() -> Workload;
    let factories: &[(&str, WorkloadFactory)] = &[
        ("Python", || workload::python_volume(60_000)),
        ("OpenVINO", || workload::openvino_inference(180)),
        ("PyTorch", || workload::pytorch_training(420)),
    ];
    for (name, make) in factories {
        let mut results = Vec::new();
        for sinclave_mode in [false, true] {
            let world = BenchWorld::new(0x900 + sinclave_mode as u64);
            let sample = make();
            let image = if sinclave_mode {
                sample.image.clone().sinclave_aware()
            } else {
                sample.image.clone()
            };
            let packaged = world.package(&image);
            world.add_policy("fig9", &packaged, PolicyMode::Either, sample.config.clone());
            let cas = world.cas.clone();
            let _server = cas.serve(&world.network, "cas:x9", 1_000_000, 99);
            let mut i = 0u64;
            let elapsed = time(3, || {
                i += 1;
                let w = make();
                let opts =
                    StartOptions::new("cas:x9", "fig9").with_volume(w.volume.clone()).with_seed(i);
                let app = if sinclave_mode {
                    world.host.start_sinclave(&packaged, &opts).expect("run")
                } else {
                    world.host.start_baseline(&packaged, &opts).expect("run")
                };
                assert!(app.outcome.stdout.last().expect("out").ends_with("-done"));
            });
            results.push(elapsed);
        }
        let overhead = (results[1].as_secs_f64() - results[0].as_secs_f64())
            / results[0].as_secs_f64()
            * 100.0;
        println!("{:>10} {:>14.2?} {:>14.2?} {:>+9.2}%", name, results[0], results[1], overhead);
    }
    println!();
}

fn main() {
    println!("SinClave reproduction — experiments harness");
    println!("(mean wall-clock timings; see EXPERIMENTS.md for commentary)");
    println!();
    fig6();
    let world = BenchWorld::new(0x5eed);
    fig7a(&world);
    fig7b(&world);
    fig7c(&world);
    fig8();
    fig9();
    println!("done.");
}
