//! Fig. 7b — "SigStruct Signing and Verification": RSA-3072 SigStruct
//! signing (paper: 4.9 ms), successful verification ("Verify C.",
//! paper: 0.4 ms) and failing verification ("Verify E.", paper: same
//! as success).

use criterion::{criterion_group, criterion_main, Criterion};
use sinclave_bench::BenchWorld;
use sinclave_crypto::sha256::Digest;
use sinclave_sgx::attributes::Attributes;
use sinclave_sgx::measurement::Measurement;
use sinclave_sgx::sigstruct::{SigStruct, SigStructBody};

fn body() -> SigStructBody {
    SigStructBody {
        enclave_hash: Measurement(Digest([0x5a; 32])),
        attributes: Attributes::production(),
        attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
        isv_prod_id: 1,
        isv_svn: 1,
        date: 20230405,
        vendor: 0,
    }
}

fn bench_sigstruct(c: &mut Criterion) {
    let world = BenchWorld::new(0x7b);
    let signed = SigStruct::sign(body(), &world.signer_key).expect("sign");
    // A corrupted copy for the failing-verification case.
    let corrupt = {
        let mut bytes = signed.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        SigStruct::from_bytes(&bytes).expect("parse")
    };

    let mut group = c.benchmark_group("fig7b/sigstruct");
    group.bench_function("sign", |b| {
        b.iter(|| SigStruct::sign(body(), &world.signer_key).expect("sign"));
    });
    group.bench_function("verify-correct", |b| {
        b.iter(|| signed.verify().expect("valid"));
    });
    group.bench_function("verify-erroneous", |b| {
        b.iter(|| signed_err(&corrupt));
    });
    group.finish();
}

fn signed_err(corrupt: &SigStruct) {
    assert!(corrupt.verify().is_err());
}

criterion_group!(fig7b, bench_sigstruct);
criterion_main!(fig7b);
