//! Fig. 6 — "Calculation of a SHA256 checksum with different
//! implementations": one-shot optimized hash (the paper's Ring
//! baseline) vs the interruptible SinClave hash vs the base-hash
//! variant (interruption + state encoding instead of finalization),
//! plus the constant-time base-hash → MRENCLAVE finalization.
//!
//! Beyond the paper's variants, `sinclave-batched` pins the
//! interruptible hasher to the portable multi-block core (isolating
//! the win from streaming block runs instead of per-block buffering)
//! and `sinclave-shani` pins it to the x86 SHA-extensions core
//! (skipped when the CPU lacks them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sinclave::instance_page::InstancePage;
use sinclave::BaseEnclaveHash;
use sinclave_bench::{hash_buffer, human_size};
use sinclave_crypto::sha256::{self, Backend, Sha256};

/// The buffer sizes of the paper's x-axis.
const SIZES: &[usize] = &[2 << 10, 16 << 10, 128 << 10, 1 << 20, 8 << 20];

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/sha256");
    for &size in SIZES {
        let buffer = hash_buffer(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("ring-substitute", human_size(size)),
            &buffer,
            |b, buf| {
                b.iter(|| sha256::fast::digest(buf));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sinclave", human_size(size)),
            &buffer,
            |b, buf| {
                b.iter(|| {
                    let mut h = Sha256::new();
                    h.update(buf);
                    h.finalize()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sinclave-batched", human_size(size)),
            &buffer,
            |b, buf| {
                b.iter(|| {
                    let mut h = Sha256::with_backend(Backend::Portable);
                    h.update(buf);
                    h.finalize()
                });
            },
        );
        if Backend::sha_ni_available() {
            group.bench_with_input(
                BenchmarkId::new("sinclave-shani", human_size(size)),
                &buffer,
                |b, buf| {
                    b.iter(|| {
                        let mut h = Sha256::with_backend(Backend::ShaNi);
                        h.update(buf);
                        h.finalize()
                    });
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("sinclave-basehash", human_size(size)),
            &buffer,
            |b, buf| {
                b.iter(|| {
                    let mut h = Sha256::new();
                    h.update(buf);
                    // Interrupt instead of finalizing: encode the state.
                    h.export_state().expect("block aligned").encode()
                });
            },
        );
    }
    group.finish();
}

fn bench_finalization(c: &mut Criterion) {
    // "The time it takes to finalize an enclave base hash into an
    // enclave measurement … requires constant 32 µs."
    let layout =
        sinclave::layout::EnclaveLayout::for_program(&hash_buffer(64 << 10), 16).expect("layout");
    let m = layout.measure_base().expect("measure");
    let base =
        BaseEnclaveHash::new(m.export_state(), layout.enclave_size, layout.instance_page_offset());
    let page = InstancePage::new(
        sinclave::AttestationToken([7; 32]),
        sinclave_crypto::sha256::digest(b"verifier"),
    );
    c.bench_function("fig6/basehash-finalize-to-mrenclave", |b| {
        b.iter(|| base.singleton_measurement(&page).expect("finalize"));
    });
}

criterion_group!(fig6, bench_sha256, bench_finalization);
criterion_main!(fig6);
