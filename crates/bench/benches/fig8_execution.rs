//! Fig. 8 — "Measurement of program execution": a minimal program run
//! in simulation mode (no enclave), hardware mode (enclave, no
//! attestation) and hardware+attestation mode, for heap sizes from
//! 32 MB to 2 GB, baseline vs SinClave.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinclave_bench::BenchWorld;
use sinclave_cas::policy::PolicyMode;
use sinclave_runtime::scone::{run_native, StartOptions};
use sinclave_runtime::ProgramImage;

/// Heap sizes in MiB, the paper's x-axis.
const HEAPS_MIB: &[u64] = &[32, 128, 512, 2048];

fn image(heap_mib: u64, sinclave: bool) -> ProgramImage {
    let img = ProgramImage::with_entry("minimal-c", "print 0", heap_mib * 256);
    if sinclave {
        img.sinclave_aware()
    } else {
        img
    }
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/execution");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    for &heap in HEAPS_MIB {
        // Simulation mode: no enclave, both systems identical.
        let img = image(heap, false);
        group.bench_with_input(BenchmarkId::new("sim", heap), &img, |b, img| {
            let network = sinclave_net::Network::new();
            b.iter(|| run_native(img, &network).expect("run"));
        });

        for (system, sinclave_mode) in [("baseline", false), ("sinclave", true)] {
            // Hardware mode: build + EINIT + run, no attestation.
            let world = BenchWorld::new(0x80 + heap + sinclave_mode as u64);
            let packaged = world.package(&image(heap, sinclave_mode));
            group.bench_with_input(
                BenchmarkId::new(format!("hw/{system}"), heap),
                &packaged,
                |b, packaged| {
                    b.iter(|| world.host.start_unattested(packaged).expect("run"));
                },
            );

            // Hardware + attestation.
            world.add_policy(
                "app",
                &packaged,
                PolicyMode::Either,
                sinclave::AppConfig { entry: "embedded".into(), ..Default::default() },
            );
            let cas = world.cas.clone();
            let _server = cas.serve(&world.network, "cas:fig8", 1_000_000, heap);
            group.bench_with_input(
                BenchmarkId::new(format!("hw+attest/{system}"), heap),
                &packaged,
                |b, packaged| {
                    let mut i = 0u64;
                    b.iter(|| {
                        i += 1;
                        let opts = StartOptions::new("cas:fig8", "app").with_seed(i);
                        if sinclave_mode {
                            world.host.start_sinclave(packaged, &opts).expect("run")
                        } else {
                            world.host.start_baseline(packaged, &opts).expect("run")
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(fig8, bench_execution);
criterion_main!(fig8);
