//! Fig. 7a — "Compilation duration": native build (no signing) vs
//! baseline (SCONE: one-shot measure + sign) vs SinClave
//! (interruptible measure + base-hash export + common finalize + sign)
//! of a minimal C program ("only a return statement in main").

use criterion::{criterion_group, criterion_main, Criterion};
use sinclave::signer::{sign_enclave, sign_enclave_baseline, SignerConfig};
use sinclave_bench::BenchWorld;
use sinclave_runtime::ProgramImage;

fn bench_compile(c: &mut Criterion) {
    let world = BenchWorld::new(0x7a);
    // "A small C program that only contains a return statement":
    // a minimal image, padded to a realistic binary size.
    let image = ProgramImage::with_entry("minimal-c", "print 0", 4).padded_to(512 << 10);
    let layout = image.layout().expect("layout");
    let config = SignerConfig::default();

    let mut group = c.benchmark_group("fig7a/compile");
    group.sample_size(20);
    group.bench_function("native", |b| {
        // Native compilation: emit the binary, no enclave signing.
        b.iter(|| image.code_bytes());
    });
    group.bench_function("baseline", |b| {
        b.iter(|| sign_enclave_baseline(&layout, &world.signer_key, &config).expect("sign"));
    });
    group.bench_function("sinclave", |b| {
        b.iter(|| sign_enclave(&layout, &world.signer_key, &config).expect("sign"));
    });
    group.finish();
}

criterion_group!(fig7a, bench_compile);
criterion_main!(fig7a);
