//! Fig. 7c — "SinClave operation durations": the singleton page
//! retrieval round trip (paper: ≈26.3 ms total) split into its
//! components: connection open/close (3.74 ms), SigStruct verification
//! (0.4 ms), expected-measurement calculation (32 µs), on-demand
//! SigStruct signing (4.93 ms), plus CAS miscellaneous work — and,
//! beyond the paper, two sweeps: `fig7c/throughput` (aggregate grant
//! throughput as concurrent attesters pile onto one CAS, pooled
//! worker serving versus the paper's strictly sequential instance)
//! and `fig7c/fan-in` (one CAS holding thousands of mostly-idle
//! concurrent sessions: the readiness-driven reactor's handful of
//! threads against a pool sized thread-per-connection, swept up to
//! 10 000 connections where thread-per-connection stops being a
//! reasonable baseline at all).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::Message;
use sinclave_bench::BenchWorld;
use sinclave_cas::policy::PolicyMode;
use sinclave_net::SecureChannel;
use sinclave_runtime::scone::PackagedApp;
use sinclave_runtime::ProgramImage;
use sinclave_sgx::verify_cache::VerifyCache;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_retrieval(c: &mut Criterion) {
    let world = BenchWorld::new(0x7c);
    let image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let packaged = world.package(&image);
    world.add_policy("app", &packaged, PolicyMode::Singleton, Default::default());

    let mut group = c.benchmark_group("fig7c/retrieval");
    group.sample_size(20);

    // Component: connection establishment + teardown with a no-op
    // request ("O/C" in the paper).
    group.bench_function("connect-open-close", |b| {
        let cas = world.cas.clone();
        let _server = cas.serve(&world.network, "cas:7c-ping", 1_000_000, 1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let conn = world.network.connect("cas:7c-ping").expect("connect");
            let mut rng = StdRng::seed_from_u64(i);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(&Message::Ping.to_bytes()).expect("send");
            let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
            assert_eq!(reply, Message::Pong);
        });
    });

    // Component: verify received SigStruct (paper: ≈0.4 ms of RSA
    // work per connection).
    group.bench_function("verify-common-sigstruct", |b| {
        b.iter(|| packaged.signed.common_sigstruct.verify().expect("valid"));
    });

    // Component, warm series: the same verification once the
    // (signer, evidence) pair is cached — a sharded lookup with a
    // constant-time compare, what every repeat binary pays.
    group.bench_function("verify-common-sigstruct-warm", |b| {
        let cache = VerifyCache::new();
        packaged.signed.common_sigstruct.verify_cached(&cache).expect("admit");
        b.iter(|| packaged.signed.common_sigstruct.verify_cached(&cache).expect("valid"));
    });

    // Component: expected singleton measurement from base hash.
    let page = sinclave::instance_page::InstancePage::new(
        sinclave::AttestationToken([9; 32]),
        world.cas.identity(),
    );
    group.bench_function("expected-measurement", |b| {
        b.iter(|| packaged.signed.base_hash.singleton_measurement(&page).expect("measure"));
    });

    // Component: the issuer's full grant (verify + token + measurement
    // + on-demand signing) without the network.
    group.bench_function("issue-grant-offline", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            world
                .cas
                .issuer()
                .issue(&mut rng, &packaged.signed.common_sigstruct, &packaged.signed.base_hash)
                .expect("grant")
        });
    });

    // Total: the complete network round trip (what Fig. 7c sums to).
    group.bench_function("total-round-trip", |b| {
        let cas = world.cas.clone();
        let _server = cas.serve(&world.network, "cas:7c-grant", 1_000_000, 3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let conn = world.network.connect("cas:7c-grant").expect("connect");
            let mut rng = StdRng::seed_from_u64(1000 + i);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(
                &Message::GrantRequest {
                    common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                    base_hash: packaged.signed.base_hash.encode().to_vec(),
                }
                .to_bytes(),
            )
            .expect("send");
            let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
            assert!(matches!(reply, Message::GrantResponse { .. }));
        });
    });

    group.finish();
}

/// Grants completed per throughput measurement: enough round trips
/// that worker startup amortizes, small enough that `--test` smoke
/// runs stay quick, and divisible by every swept client count so the
/// served-connection budget always matches the offered load exactly.
const THROUGHPUT_GRANTS: usize = 32;

/// Runs `THROUGHPUT_GRANTS` full grant round trips against a CAS
/// served by `workers` pool workers, with the load spread over
/// `clients` concurrent client threads.
fn grant_burst(
    world: &BenchWorld,
    packaged: &PackagedApp,
    addr: &str,
    clients: usize,
    workers: usize,
    seed: u64,
) {
    assert_eq!(THROUGHPUT_GRANTS % clients, 0, "client count must divide the grant budget");
    let server =
        world.cas.serve_with_workers(&world.network, addr, THROUGHPUT_GRANTS, seed, workers);
    let per_client = THROUGHPUT_GRANTS / clients;
    std::thread::scope(|scope| {
        for client in 0..clients {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (0x5eed << 8) ^ client as u64);
                for _ in 0..per_client {
                    let conn = world.network.connect(addr).expect("connect");
                    let mut chan =
                        SecureChannel::client_connect(conn, &mut rng).expect("handshake");
                    chan.send(
                        &Message::GrantRequest {
                            common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                            base_hash: packaged.signed.base_hash.encode().to_vec(),
                        }
                        .to_bytes(),
                    )
                    .expect("send");
                    let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
                    assert!(matches!(reply, Message::GrantResponse { .. }), "got {reply:?}");
                }
            });
        }
    });
    server.join().expect("server pool");
}

fn bench_throughput(c: &mut Criterion) {
    let world = BenchWorld::new(0x7d);
    let image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let packaged = world.package(&image);

    let mut group = c.benchmark_group("fig7c/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(THROUGHPUT_GRANTS as u64));
    let round = AtomicU64::new(0);

    // The paper's single CAS instance: a strictly sequential accept
    // loop (one worker), even with 8 attesters requesting at once.
    group.bench_function("sequential-8-clients", |b| {
        b.iter(|| {
            let seed = round.fetch_add(1, Ordering::Relaxed);
            grant_burst(&world, &packaged, "cas:7c-tp-seq", 8, 1, seed);
        });
    });

    // Pooled serving under rising fan-in; throughput should scale with
    // client count until the worker pool saturates the cores.
    for clients in [1usize, 2, 4, 8, 16] {
        group.bench_function(format!("pooled-{clients}-clients"), |b| {
            b.iter(|| {
                let seed = 0x1_0000 + round.fetch_add(1, Ordering::Relaxed);
                grant_burst(
                    &world,
                    &packaged,
                    &format!("cas:7c-tp-{clients}"),
                    clients,
                    sinclave_cas::CasServer::default_workers(),
                    seed,
                );
            });
        });
    }
    group.finish();
}

fn bench_fan_in(c: &mut Criterion) {
    use sinclave_bench::{fan_in_burst, ServePath};
    use sinclave_cas::MiddlewareConfig;
    use std::time::Duration;

    let world = BenchWorld::new(0x7e);
    // Mostly-idle sessions are the scenario, not a fault — deadlines
    // stay generous so nothing is reaped mid-measurement.
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_secs(600)),
        idle_timeout: Some(Duration::from_secs(600)),
        ..MiddlewareConfig::default()
    });

    let mut group = c.benchmark_group("fig7c/fan-in");
    group.measurement_time(Duration::from_millis(150));
    let round = AtomicU64::new(0);
    // (name, connections, path): the pool is sized
    // thread-per-connection — at 10k that stops being a baseline a
    // deployment would run (10 000 serving threads), so only the
    // reactor is swept there.
    let reactor = |loops, compute| ServePath::Reactor { loops, compute };
    let cases: [(&str, usize, ServePath); 3] = [
        ("pool-1k-1000-threads", 1_000, ServePath::Pool { workers: 1_000 }),
        ("reactor-1k-4-threads", 1_000, reactor(2, 2)),
        ("reactor-10k-4-threads", 10_000, reactor(2, 2)),
    ];
    for (name, connections, path) in &cases {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let seed = 0xfa_0000 + round.fetch_add(1, Ordering::Relaxed);
                fan_in_burst(&world, "cas:7c-fan", *connections, 1, path, seed);
            });
        });
    }
    group.finish();
}

criterion_group!(fig7c, bench_retrieval, bench_throughput, bench_fan_in);
criterion_main!(fig7c);
