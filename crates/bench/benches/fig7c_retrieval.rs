//! Fig. 7c — "SinClave operation durations": the singleton page
//! retrieval round trip (paper: ≈26.3 ms total) split into its
//! components: connection open/close (3.74 ms), SigStruct verification
//! (0.4 ms), expected-measurement calculation (32 µs), on-demand
//! SigStruct signing (4.93 ms), plus CAS miscellaneous work.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::Message;
use sinclave_bench::BenchWorld;
use sinclave_cas::policy::PolicyMode;
use sinclave_net::SecureChannel;
use sinclave_runtime::ProgramImage;

fn bench_retrieval(c: &mut Criterion) {
    let world = BenchWorld::new(0x7c);
    let image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let packaged = world.package(&image);
    world.add_policy("app", &packaged, PolicyMode::Singleton, Default::default());

    let mut group = c.benchmark_group("fig7c/retrieval");
    group.sample_size(20);

    // Component: connection establishment + teardown with a no-op
    // request ("O/C" in the paper).
    group.bench_function("connect-open-close", |b| {
        let cas = world.cas.clone();
        let _server = cas.serve(&world.network, "cas:7c-ping", 1_000_000, 1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let conn = world.network.connect("cas:7c-ping").expect("connect");
            let mut rng = StdRng::seed_from_u64(i);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(&Message::Ping.to_bytes()).expect("send");
            let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
            assert_eq!(reply, Message::Pong);
        });
    });

    // Component: verify received SigStruct.
    group.bench_function("verify-common-sigstruct", |b| {
        b.iter(|| packaged.signed.common_sigstruct.verify().expect("valid"));
    });

    // Component: expected singleton measurement from base hash.
    let page = sinclave::instance_page::InstancePage::new(
        sinclave::AttestationToken([9; 32]),
        world.cas.identity(),
    );
    group.bench_function("expected-measurement", |b| {
        b.iter(|| packaged.signed.base_hash.singleton_measurement(&page).expect("measure"));
    });

    // Component: the issuer's full grant (verify + token + measurement
    // + on-demand signing) without the network.
    group.bench_function("issue-grant-offline", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            world
                .cas
                .issuer()
                .issue(&mut rng, &packaged.signed.common_sigstruct, &packaged.signed.base_hash)
                .expect("grant")
        });
    });

    // Total: the complete network round trip (what Fig. 7c sums to).
    group.bench_function("total-round-trip", |b| {
        let cas = world.cas.clone();
        let _server = cas.serve(&world.network, "cas:7c-grant", 1_000_000, 3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let conn = world.network.connect("cas:7c-grant").expect("connect");
            let mut rng = StdRng::seed_from_u64(1000 + i);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(
                &Message::GrantRequest {
                    common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                    base_hash: packaged.signed.base_hash.encode().to_vec(),
                }
                .to_bytes(),
            )
            .expect("send");
            let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
            assert!(matches!(reply, Message::GrantResponse { .. }));
        });
    });

    group.finish();
}

criterion_group!(fig7c, bench_retrieval);
criterion_main!(fig7c);
