//! Ablations of SinClave's design choices (beyond the paper's figures):
//!
//! 1. **Base-hash prediction vs. naive re-measurement.** The verifier
//!    could predict a singleton's `MRENCLAVE` by re-measuring the whole
//!    enclave per grant instead of finalizing an interrupted hash. The
//!    interruptible design makes prediction O(1) in binary size — this
//!    ablation quantifies the win as binaries grow.
//! 2. **Prepared vs. cold prediction.** The verifier's per-grant hash
//!    work used to be two full instance-page measurements (common
//!    check + singleton prediction). The [`PreparedBaseHash`] midstate
//!    cache absorbs the instance-page `EADD` and the common
//!    measurement once per enclave, leaving 16 `EEXTEND` runs plus
//!    finalization per grant — this quantifies the per-grant win.
//! 3. **On-demand SigStruct key size.** SGX mandates RSA-3072; the
//!    per-singleton signing cost is the dominant grant component
//!    (Fig. 7c), so this shows what smaller/bigger signer keys would
//!    change.
//! 4. **RSA-CRT.** Signing uses the CRT; this measures the speedup over
//!    plain private-exponent exponentiation.
//! 5. **Dedicated Montgomery squaring.** Squarings dominate windowed
//!    exponentiation (four per 4-bit window); `ablation/mont-sqr`
//!    measures RSA-3072 CRT signing on the `mont_sqr` fast path
//!    against the previous general-multiplier-only code.
//! 6. **Vectored grant issue.** `ablation/batch-issue` compares N
//!    sequential `issue` calls against one `issue_batch(N)`, which
//!    validates once and fans the on-demand signatures out over a
//!    thread pool.
//! 7. **Verified-SigStruct cache.** Every grant request re-verifies
//!    the same common SigStruct for repeat binaries (~0.4 ms of RSA
//!    work in Fig. 7c); `ablation/verify-cache` measures the warm
//!    lookup against the cold verification, and the full issuer grant
//!    with both caches warm against a cold-start issuer — after
//!    asserting the cached path issues bit-identical grants.
//! 8. **Verify-cache persistence.** The verify cache is worth nothing
//!    to a freshly deployed process unless its state survives the
//!    restart; `ablation/warm-restart` measures a CAS rebuilt from
//!    its encrypted volume (snapshot restore included) against a
//!    continuously running warm instance and against the cold
//!    re-verification baseline — after asserting the restored CAS is
//!    warm *before* its first grant and issues bit-identically.
//! 9. **Group-committed redemption journal.** Crash-absolute
//!    exactly-once redemption requires a sealed append per acked
//!    redemption; `ablation/journal` measures concurrent redemption
//!    throughput with group commit (batched durability) against the
//!    no-journal in-memory baseline, the honest fsync-per-redemption
//!    ablation, and the pre-journal snapshot-per-event alternative —
//!    under a modeled block-device flush latency, so the durability
//!    designs are costed like hardware — after asserting that a
//!    journaled redemption survives a crash-rebuild and that the
//!    disabled journal honestly reopens the window.
//! 10. **Reactor vs. thread-per-connection serving.**
//!     `ablation/reactor` measures a mostly-idle 1 000-connection
//!     fan-in served by the readiness-driven reactor (a handful of
//!     threads) against the pooled path sized thread-per-connection —
//!     after asserting two gates: a single-loop single-worker reactor
//!     with middleware off answers a scripted session byte-identically
//!     to the 1-worker pool, and a slow-loris fleet is reaped on its
//!     deadlines without touching healthy clients (and without being
//!     miscounted as tampering).
//! 11. **Replicated read scaling.** `ablation/replication` measures a
//!     read-mostly session burst against one node and against a
//!     primary plus two live followers (journal streams attached) —
//!     after a failover-fidelity gate: a follower that adopted the
//!     primary's baseline promotes under a durable fence, the deposed
//!     primary refuses further redemptions, and exactly-once holds
//!     across the handover.
//! 12. **Request tracing.** `ablation/trace` gates that the tracing
//!     layer is invisible to clients — tracing dark (the default)
//!     serves a scripted session bit-identically to tracing lit for an
//!     untraced caller, and dark records nothing at all — then
//!     measures the 256-connection fan-in with the flight recorder
//!     dark versus lit at keep-everything sampling (the worst-case
//!     recorder traffic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::instance_page::InstancePage;
use sinclave::layout::EnclaveLayout;
use sinclave::signer::{sign_enclave, SignerConfig};
use sinclave::verifier::SingletonIssuer;
use sinclave::{AttestationToken, BaseEnclaveHash};
use sinclave_bench::hash_buffer;
use sinclave_crypto::bignum::Uint;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_crypto::sha256;
use sinclave_sgx::secinfo::SecInfo;
use sinclave_sgx::verify_cache::VerifyCache;

fn bench_prediction_vs_remeasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/prediction-vs-remeasure");
    group.sample_size(20);
    let page = InstancePage::new(AttestationToken([7; 32]), sha256::digest(b"verifier"));
    for size_kib in [64usize, 512, 4096] {
        let program = hash_buffer(size_kib << 10);
        let layout = EnclaveLayout::for_program(&program, 16).expect("layout");
        let m = layout.measure_base().expect("measure");
        let base = BaseEnclaveHash::new(
            m.export_state(),
            layout.enclave_size,
            layout.instance_page_offset(),
        );

        group.bench_with_input(
            BenchmarkId::new("interruptible-finalize", size_kib),
            &base,
            |b, base| {
                b.iter(|| base.singleton_measurement(&page).expect("finalize"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive-remeasure", size_kib),
            &layout,
            |b, layout| {
                b.iter(|| {
                    let mut m = layout.measure_base().expect("measure");
                    m.add_page(
                        layout.instance_page_offset(),
                        &page.to_page_bytes(),
                        SecInfo::read_only(),
                        true,
                    )
                    .expect("page");
                    m.finalize()
                });
            },
        );
    }
    group.finish();
}

fn bench_prepared_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/prepared-vs-cold");
    let page = InstancePage::new(AttestationToken([9; 32]), sha256::digest(b"verifier"));
    let layout = EnclaveLayout::for_program(&hash_buffer(64 << 10), 16).expect("layout");
    let m = layout.measure_base().expect("measure");
    let base =
        BaseEnclaveHash::new(m.export_state(), layout.enclave_size, layout.instance_page_offset());

    // The pre-cache issue() hash work: re-derive the common
    // measurement for the SigStruct check, then predict the singleton.
    group.bench_function("cold-issue-prediction", |b| {
        b.iter(|| {
            let common = base.common_measurement().expect("common");
            let singleton = base.singleton_measurement(&page).expect("singleton");
            (common, singleton)
        });
    });
    // First grant for an enclave: prepare the midstate, derive the
    // common measurement once, predict.
    group.bench_function("prepared-first-grant", |b| {
        b.iter(|| {
            let prepared = base.prepare().expect("prepare");
            (prepared.common_measurement(), prepared.singleton_measurement(&page))
        });
    });
    // Every further grant: 16 EEXTEND runs + finalize, nothing else.
    let prepared = base.prepare().expect("prepare");
    group.bench_function("prepared-warm-grant", |b| {
        b.iter(|| prepared.singleton_measurement(&page));
    });
    group.finish();
}

fn bench_signer_key_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/signer-key-size");
    group.sample_size(20);
    for bits in [1024usize, 2048, 3072] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let key = RsaPrivateKey::generate(&mut rng, bits).expect("keygen");
        group.bench_with_input(BenchmarkId::new("sign", bits), &key, |b, key| {
            b.iter(|| key.sign(b"on-demand sigstruct body").expect("sign"));
        });
    }
    group.finish();
}

fn bench_crt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xc47);
    let key = RsaPrivateKey::generate(&mut rng, 2048).expect("keygen");
    let digest = sha256::digest(b"message");
    let mut group = c.benchmark_group("ablation/rsa-crt");
    group.sample_size(20);
    group.bench_function("with-crt", |b| {
        b.iter(|| key.sign_digest(&digest).expect("sign"));
    });
    group.bench_function("without-crt", |b| {
        // Cost model of plain m^d mod n, as a non-CRT implementation
        // would do: one full-width exponentiation with a d-sized
        // exponent (the exact value of d is irrelevant to the cost and
        // intentionally not exposed by the key API).
        let sig = key.sign_digest(&digest).expect("sign");
        let s = Uint::from_be_bytes(&sig);
        let m = s.mod_pow(key.public_key().exponent(), key.public_key().modulus());
        b.iter(|| {
            std::hint::black_box(m.mod_pow(private_exponent(&key), key.public_key().modulus()))
        });
    });
    group.finish();
}

/// The private exponent is intentionally inaccessible through the key
/// API; for the *cost* ablation any exponent of d's width is
/// equivalent, and the modulus has the same bit length as d (within a
/// few bits).
fn private_exponent(key: &RsaPrivateKey) -> &Uint {
    // The modulus has the same bit length as d (within a few bits), so
    // exponentiation by n-like values costs the same as by d.
    key.public_key().modulus()
}

fn bench_mont_sqr(c: &mut Criterion) {
    // The paper's mandated signer key size; CRT halves are 1536 bits.
    let mut rng = StdRng::seed_from_u64(0x3072);
    let key = RsaPrivateKey::generate(&mut rng, 3072).expect("keygen");
    let digest = sha256::digest(b"on-demand sigstruct body");
    let mut group = c.benchmark_group("ablation/mont-sqr");
    group.sample_size(20);
    group.bench_function("sign-3072-mont-sqr", |b| {
        b.iter(|| key.sign_digest(&digest).expect("sign"));
    });
    group.bench_function("sign-3072-mul-only", |b| {
        b.iter(|| key.sign_digest_mul_only(&digest).expect("sign"));
    });
    group.finish();
}

fn bench_batch_issue(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xba7c);
    let signer_key = RsaPrivateKey::generate(&mut rng, 3072).expect("keygen");
    let layout = EnclaveLayout::for_program(&hash_buffer(64 << 10), 16).expect("layout");
    let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).expect("sign");
    let issuer = SingletonIssuer::new(signer_key, sha256::digest(b"verifier"));

    const BATCH: usize = 8;
    let mut group = c.benchmark_group("ablation/batch-issue");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("sequential-8", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).expect("grant");
            }
        });
    });
    group.bench_function("batched-8", |b| {
        b.iter(|| {
            issuer
                .issue_batch(&mut rng, &signed.common_sigstruct, &signed.base_hash, BATCH)
                .expect("grants")
        });
    });
    group.finish();
}

fn bench_verify_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x51_6c);
    let signer_key = RsaPrivateKey::generate(&mut rng, 3072).expect("keygen");
    let layout = EnclaveLayout::for_program(&hash_buffer(64 << 10), 16).expect("layout");
    let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).expect("sign");

    // Correctness gate before timing anything: a warm issuer must
    // produce byte-identical grants to a cold one for the same rng
    // stream — the caches are pure memoization.
    let warm_issuer = SingletonIssuer::new(signer_key.clone(), sha256::digest(b"verifier"));
    let mut warmup = StdRng::seed_from_u64(1);
    warm_issuer
        .issue(&mut warmup, &signed.common_sigstruct, &signed.base_hash)
        .expect("warmup grant");
    let cold_issuer = SingletonIssuer::new(signer_key.clone(), sha256::digest(b"verifier"));
    let mut warm_rng = StdRng::seed_from_u64(2);
    let mut cold_rng = StdRng::seed_from_u64(2);
    for _ in 0..3 {
        let warm =
            warm_issuer.issue(&mut warm_rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let cold =
            cold_issuer.issue(&mut cold_rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        assert_eq!(warm.token, cold.token, "tokens diverged");
        assert_eq!(
            warm.sigstruct.to_bytes(),
            cold.sigstruct.to_bytes(),
            "cached path must issue bit-identical grants"
        );
    }
    assert_eq!(warm_issuer.verified_cache_len(), 1, "one RSA verify served every grant");

    let mut group = c.benchmark_group("ablation/verify-cache");
    group.sample_size(20);
    // Cold: the pre-cache per-connection cost — a full RSA-3072
    // verification of the common SigStruct.
    group.bench_function("verify-cold", |b| {
        b.iter(|| signed.common_sigstruct.verify().expect("valid"));
    });
    // Warm: a sharded lookup with a constant-time digest compare.
    let cache = VerifyCache::new();
    signed.common_sigstruct.verify_cached(&cache).expect("admit");
    group.bench_function("verify-warm", |b| {
        b.iter(|| signed.common_sigstruct.verify_cached(&cache).expect("valid"));
    });
    // The issuer's grant path with every per-enclave cache warm
    // (verification + prepared midstate): what a repeat binary pays.
    let mut grant_rng = StdRng::seed_from_u64(3);
    group.bench_function("issue-grant-warm-caches", |b| {
        b.iter(|| {
            warm_issuer
                .issue(&mut grant_rng, &signed.common_sigstruct, &signed.base_hash)
                .expect("grant")
        });
    });
    group.finish();
}

fn bench_warm_restart(c: &mut Criterion) {
    use sinclave_cas::store::CasStore;
    use sinclave_cas::CasServer;
    use sinclave_crypto::aead::AeadKey;
    use sinclave_fs::Volume;
    use std::sync::atomic::Ordering;

    let mut rng = StdRng::seed_from_u64(0x7e57a7);
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("channel key");
    let signer_key = RsaPrivateKey::generate(&mut rng, 3072).expect("signer key");
    let root = RsaPrivateKey::generate(&mut rng, 1024).expect("root key");
    let store_key = AeadKey::new([0x7e; 32]);
    let layout = EnclaveLayout::for_program(&hash_buffer(64 << 10), 16).expect("layout");
    let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).expect("sign");

    // The continuously running instance: warmed by one grant, then
    // snapshotted — its volume image is what a redeploy finds on disk.
    let warm = CasServer::new(
        channel_key.clone(),
        signer_key.clone(),
        root.public_key().clone(),
        CasStore::create(store_key.clone()),
    );
    let mut warmup = StdRng::seed_from_u64(1);
    warm.issuer().issue(&mut warmup, &signed.common_sigstruct, &signed.base_hash).expect("warmup");
    warm.persist_state().expect("persist");
    let image = warm.store().volume().to_disk_image();

    let restart = |image: &[u8]| {
        let volume = Volume::from_disk_image(image).expect("image");
        let store = CasStore::open(volume, store_key.clone()).expect("open");
        CasServer::new(channel_key.clone(), signer_key.clone(), root.public_key().clone(), store)
    };

    // Correctness gates before timing anything. (1) The acceptance
    // criterion: a restarted CAS is warm *before* its first grant —
    // that grant runs no RSA verification. (2) The restored caches are
    // pure memoization: warm-process and warm-restart instances issue
    // bit-identical grants for the same rng stream.
    let restarted = restart(&image);
    assert_eq!(restarted.stats.snapshot_restored.load(Ordering::Relaxed), 1);
    assert_eq!(restarted.issuer().verified_cache_len(), 1, "must be warm before any grant");
    let mut warm_rng = StdRng::seed_from_u64(2);
    let mut restart_rng = StdRng::seed_from_u64(2);
    for _ in 0..3 {
        let a = warm
            .issuer()
            .issue(&mut warm_rng, &signed.common_sigstruct, &signed.base_hash)
            .expect("warm grant");
        let b = restarted
            .issuer()
            .issue(&mut restart_rng, &signed.common_sigstruct, &signed.base_hash)
            .expect("restarted grant");
        assert_eq!(a.token, b.token, "tokens diverged");
        assert_eq!(a.sigstruct.to_bytes(), b.sigstruct.to_bytes(), "grants diverged");
    }

    let mut group = c.benchmark_group("ablation/warm-restart");
    group.sample_size(10);
    // Baseline: what every post-restart repeat grant paid before
    // persistence — the full RSA-3072 verification (~0.4 ms class).
    group.bench_function("verify-cold-baseline", |b| {
        b.iter(|| signed.common_sigstruct.verify().expect("valid"));
    });
    // The restore cost itself: reopen the volume and rebuild the
    // server, snapshot rehydration included — paid once per restart,
    // amortized over every grant it keeps warm.
    group.bench_function("restore-from-volume-image", |b| {
        b.iter(|| restart(&image));
    });
    // Steady state of a never-restarted warm process…
    let mut warm_grant_rng = StdRng::seed_from_u64(3);
    group.bench_function("repeat-grant-warm-process", |b| {
        b.iter(|| {
            warm.issuer()
                .issue(&mut warm_grant_rng, &signed.common_sigstruct, &signed.base_hash)
                .expect("grant")
        });
    });
    // …versus a freshly restarted one: the acceptance criterion wants
    // these within ~2x (the restarted issuer re-derives only the
    // prepared midstate on its first grant; the RSA verify stays
    // skipped).
    let mut restart_grant_rng = StdRng::seed_from_u64(3);
    group.bench_function("repeat-grant-warm-restart", |b| {
        b.iter(|| {
            restarted
                .issuer()
                .issue(&mut restart_grant_rng, &signed.common_sigstruct, &signed.base_hash)
                .expect("grant")
        });
    });
    group.finish();
}

fn bench_journal(c: &mut Criterion) {
    use sinclave::journal_record::JournalRecord;
    use sinclave_cas::store::CasStore;
    use sinclave_cas::{CasServer, JournalMode};
    use sinclave_crypto::aead::AeadKey;
    use sinclave_fs::Volume;
    use sinclave_sgx::measurement::Measurement;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};

    let mut rng = StdRng::seed_from_u64(0x10ab);
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("channel key");
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).expect("signer key");
    let root = RsaPrivateKey::generate(&mut rng, 1024).expect("root key");
    let store_key = AeadKey::new([0x1a; 32]);
    let build = |store: CasStore| {
        CasServer::new(channel_key.clone(), signer_key.clone(), root.public_key().clone(), store)
    };
    let expected = Measurement(sha256::digest(b"singleton"));
    let common = Measurement(sha256::digest(b"common"));
    let register = |cas: &CasServer, token: AttestationToken| {
        cas.issuer().apply_record(&JournalRecord::TokenGranted {
            token: token.0,
            expected: *expected.as_bytes(),
            common: *common.as_bytes(),
        });
    };

    // Correctness gates before timing anything. (1) With the journal
    // on, an acked redemption survives a crash-rebuild even though no
    // snapshot covered it. (2) With the journal disabled, the same
    // crash honestly reopens the reuse window — the no-journal
    // baseline below is a real trade, not a free lunch.
    for (mode, survives) in [
        (JournalMode::GroupCommit, true),
        (JournalMode::PerRecord, true),
        (JournalMode::Disabled, false),
    ] {
        let cas = build(CasStore::create(store_key.clone()));
        cas.set_journal_mode(mode);
        let token = AttestationToken([0x77; 32]);
        register(&cas, token);
        cas.persist_state().expect("persist"); // snapshot sees the token as Issued
        cas.redeem_token(&token, &expected).expect("redeem");
        let image = cas.store().volume().to_disk_image();
        let volume = Volume::from_disk_image(&image).expect("image");
        let rebuilt = build(CasStore::open(volume, store_key.clone()).expect("open"));
        assert_eq!(
            rebuilt.redeem_token(&token, &expected).is_err(),
            survives,
            "{mode:?}: crash semantics diverged from the documented guarantee"
        );
    }

    let cas = build(CasStore::create(store_key.clone()));
    // Cost durability like hardware would: every committed device
    // write (log append, staged chunk, manifest flip) pays a modeled
    // flush. In a pure in-memory volume all three durability designs
    // round to free and the ablation would be meaningless; 10 µs is a
    // fast-NVMe-class flush.
    const FLUSH_MICROS: u64 = 10;
    cas.store().set_flush_latency_micros(FLUSH_MICROS);
    let minted = AtomicU64::new(0);
    let mint = |n: usize| -> Vec<AttestationToken> {
        (0..n)
            .map(|_| {
                let i = minted.fetch_add(1, Ordering::Relaxed);
                let mut bytes = [0u8; 32];
                bytes[..8].copy_from_slice(&i.to_le_bytes());
                let token = AttestationToken(bytes);
                register(&cas, token);
                token
            })
            .collect()
    };

    // A persistent pool of redeemers models the sharded worker pool's
    // concurrent attest connections: per iteration, `BATCH` registered
    // tokens are redeemed durably across the pool. Group commit lets
    // concurrent redemptions share sealed appends (and their flushes);
    // per-record mode pays one flush each; snapshot-per-event pays a
    // full durable-state write each (the pre-journal way to close the
    // crash window); disabled is the in-memory ceiling.
    const WORKERS: usize = 32;
    const BATCH: usize = 128;
    std::thread::scope(|scope| {
        let mut job_txs = Vec::new();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        for _ in 0..WORKERS {
            let (job_tx, job_rx) = mpsc::channel::<Vec<AttestationToken>>();
            job_txs.push(job_tx);
            let cas: Arc<CasServer> = cas.clone();
            let done = done_tx.clone();
            scope.spawn(move || {
                for job in job_rx {
                    for token in job {
                        cas.redeem_token(&token, &expected).expect("redeem");
                    }
                    done.send(()).expect("done");
                }
            });
        }

        let mut group = c.benchmark_group("ablation/journal");
        group.throughput(Throughput::Elements(BATCH as u64));
        group.measurement_time(std::time::Duration::from_millis(150));
        for (name, mode, snapshot_cadence) in [
            ("redeem-no-journal-baseline", JournalMode::Disabled, 0),
            ("redeem-group-commit", JournalMode::GroupCommit, 0),
            ("redeem-fsync-per-record", JournalMode::PerRecord, 0),
            ("redeem-snapshot-per-event", JournalMode::Disabled, 1),
        ] {
            cas.set_journal_mode(mode);
            cas.set_snapshot_cadence(snapshot_cadence);
            group.bench_function(name, |b| {
                b.iter(|| {
                    let tokens = mint(BATCH);
                    for (chunk, job_tx) in tokens.chunks(BATCH / WORKERS).zip(&job_txs) {
                        job_tx.send(chunk.to_vec()).expect("job");
                    }
                    for _ in 0..WORKERS {
                        done_rx.recv().expect("done");
                    }
                });
            });
            // Checkpoint between modes so each series starts from a
            // truncated journal rather than inheriting the previous
            // mode's epochs.
            cas.persist_state().expect("checkpoint");
        }
        group.finish();
        drop(job_txs);
    });
}

fn bench_reactor(c: &mut Criterion) {
    use sinclave::protocol::Message;
    use sinclave_attack::starvation::SlowLoris;
    use sinclave_bench::{fan_in_burst, BenchWorld, ServePath};
    use sinclave_cas::MiddlewareConfig;
    use sinclave_net::SecureChannel;
    use sinclave_runtime::ProgramImage;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    // Gate 1 — determinism. The fully serialized reactor (one event
    // loop, one compute worker, middleware off) must answer a scripted
    // two-session request sequence byte-for-byte like the 1-worker
    // pool. Two worlds from the same seed hold identical keys, so the
    // decrypted reply records must match exactly.
    let script = |reactor: bool| -> Vec<Vec<u8>> {
        let world = BenchWorld::new(0xac7);
        let packaged = world.package(&ProgramImage::interpreter("python-3.8", 8));
        let addr = if reactor { "cas:abl-react" } else { "cas:abl-pool" };
        let server = if reactor {
            world.cas.serve_reactor_with(&world.network, addr, 2, 0xd0, 1, 1)
        } else {
            world.cas.serve_with_workers(&world.network, addr, 2, 0xd0, 1)
        };
        let mut replies = Vec::new();
        for session in 0..2u64 {
            let conn = world.network.connect(addr).expect("connect");
            let mut rng = StdRng::seed_from_u64(0xc11e47 + session);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            for request in [
                Message::GrantRequest {
                    common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                    base_hash: packaged.signed.base_hash.encode().to_vec(),
                },
                Message::ChallengeRequest,
                Message::Ping,
            ] {
                chan.send(&request.to_bytes()).expect("send");
                replies.push(chan.recv().expect("recv"));
            }
        }
        server.join().expect("serve");
        replies
    };
    assert_eq!(
        script(false),
        script(true),
        "reactor with middleware off must serve bit-identically to the 1-worker pool"
    );

    // Gate 2 — slow-loris resilience. A fleet of silent connections is
    // reaped on its inactivity deadlines while healthy clients keep
    // being served; reaping is timeouts, never tamper counts.
    {
        let world = BenchWorld::new(0xac8);
        world.cas.set_middleware(MiddlewareConfig {
            handshake_timeout: Some(Duration::from_millis(150)),
            idle_timeout: Some(Duration::from_millis(300)),
            ..MiddlewareConfig::default()
        });
        let (stalled, holders, healthy) = (8usize, 4usize, 4usize);
        let server = world.cas.serve_reactor(
            &world.network,
            "cas:abl-loris",
            stalled + holders + healthy,
            0xd1,
        );
        let loris = SlowLoris::launch(&world.network, "cas:abl-loris", stalled, holders, 0xd2)
            .expect("loris");
        for i in 0..healthy {
            let conn = world.network.connect("cas:abl-loris").expect("connect");
            conn.set_recv_timeout(Some(Duration::from_secs(600)));
            let mut rng = StdRng::seed_from_u64(0xd3 + i as u64);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(&Message::Ping.to_bytes()).expect("send");
            let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
            assert_eq!(reply, Message::Pong, "healthy client starved behind the loris");
        }
        server.join().expect("serve");
        loris.release();
        let stats = &world.cas.stats;
        assert_eq!(stats.connections_timed_out.load(Ordering::Relaxed), (stalled + holders) as u64);
        assert_eq!(stats.records_rejected.load(Ordering::Relaxed), 0);
    }

    // The measurement: 1 000 mostly-idle connections, pool sized
    // thread-per-connection against the reactor's fixed handful.
    const CONNECTIONS: usize = 1_000;
    const PINGS: usize = 2;
    let reactor = ServePath::Reactor { loops: 2, compute: 2 };
    let pool = ServePath::Pool { workers: CONNECTIONS };
    assert!(
        pool.serving_threads() >= 10 * reactor.serving_threads(),
        "the reactor must serve with at least 10x fewer threads"
    );

    let world = BenchWorld::new(0xac9);
    // Idle sessions are the scenario, not a fault: generous deadlines.
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_secs(600)),
        idle_timeout: Some(Duration::from_secs(600)),
        ..MiddlewareConfig::default()
    });
    let mut group = c.benchmark_group("ablation/reactor");
    group.throughput(Throughput::Elements((CONNECTIONS * PINGS) as u64));
    group.measurement_time(std::time::Duration::from_millis(150));
    let round = std::sync::atomic::AtomicU64::new(0);
    for (name, path) in
        [("fan-in-1k-pool-1000-threads", &pool), ("fan-in-1k-reactor-4-threads", &reactor)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let seed = 0xe000 + round.fetch_add(1, Ordering::Relaxed);
                fan_in_burst(&world, "cas:abl-fan", CONNECTIONS, PINGS, path, seed);
            });
        });
    }
    group.finish();
}

fn bench_replication(c: &mut Criterion) {
    use sinclave::protocol::Message;
    use sinclave_bench::BenchWorld;
    use sinclave_cas::{follow, serve_replication};
    use sinclave_net::{Backoff, SecureChannel};
    use sinclave_runtime::ProgramImage;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    // Gate — failover fidelity. A follower adopts the primary's
    // baseline, is promoted with a durable fence bump, and the deposed
    // primary refuses the redemption the new primary now owns:
    // exactly-once held across the handover, which is the property the
    // read-scaling numbers below are only allowed to exist under.
    {
        let world = BenchWorld::new(0xf10);
        let packaged = world.package(&ProgramImage::interpreter("python-3.8", 8));
        let mut rng = StdRng::seed_from_u64(0xf11);
        let spent = world
            .cas
            .issuer()
            .issue(&mut rng, &packaged.signed.common_sigstruct, &packaged.signed.base_hash)
            .expect("issue");
        let open = world
            .cas
            .issuer()
            .issue(&mut rng, &packaged.signed.common_sigstruct, &packaged.signed.base_hash)
            .expect("issue");
        world.cas.redeem_token(&spent.token, &spent.expected_mrenclave).expect("redeem");
        world.cas.persist_state().expect("persist");

        let _repl = serve_replication(&world.cas, &world.network, "cas:abl-repl", 4, 0xf12);
        let follower = world.new_replica();
        let pump = follow(
            follower.clone(),
            world.network.clone(),
            "cas:abl-repl".into(),
            0xf13,
            Backoff::new(Duration::from_millis(2), Duration::from_millis(20)),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while follower.journal_sequence() != world.cas.journal_sequence() {
            assert!(std::time::Instant::now() < deadline, "follower never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        pump.stop();
        let fence = follower.promote().expect("promote");
        assert!(world.cas.observe_fence(fence), "old primary not deposed");
        assert!(
            world.cas.redeem_token(&open.token, &open.expected_mrenclave).is_err(),
            "deposed primary still redeems"
        );
        assert!(
            follower.redeem_token(&spent.token, &spent.expected_mrenclave).is_err(),
            "acked redemption replayed on the new primary"
        );
        follower.redeem_token(&open.token, &open.expected_mrenclave).expect("failover redemption");
    }

    // The measurement: a read-mostly session burst against one node,
    // then spread across a primary plus two live followers (streams
    // attached, idling on heartbeats). Followers answer reads from
    // local replayed state, so read throughput should scale with the
    // fleet while every write still funnels through one journal.
    const SESSIONS: usize = 48;
    const PINGS: usize = 8;
    const CLIENT_THREADS: usize = 4;

    fn read_burst(world: &BenchWorld, addrs: &[&str], seed: u64) {
        std::thread::scope(|scope| {
            for thread in 0..CLIENT_THREADS {
                let network = world.network.clone();
                scope.spawn(move || {
                    for session in (thread..SESSIONS).step_by(CLIENT_THREADS) {
                        let addr = addrs[session % addrs.len()];
                        let conn = network.connect(addr).expect("connect");
                        let mut rng = StdRng::seed_from_u64(seed ^ (session as u64) << 8);
                        let mut chan =
                            SecureChannel::client_connect(conn, &mut rng).expect("handshake");
                        for _ in 0..PINGS {
                            chan.send(&Message::Ping.to_bytes()).expect("send");
                            chan.recv().expect("recv");
                        }
                    }
                });
            }
        });
    }

    let world = BenchWorld::new(0xf14);
    let _repl = serve_replication(&world.cas, &world.network, "cas:abl-repl-live", 4, 0xf15);
    let followers: Vec<_> = (0..2).map(|_| world.new_replica()).collect();
    let _pumps: Vec<_> = followers
        .iter()
        .enumerate()
        .map(|(i, follower)| {
            follow(
                follower.clone(),
                world.network.clone(),
                "cas:abl-repl-live".into(),
                0xf16 + i as u64,
                Backoff::new(Duration::from_millis(2), Duration::from_millis(20)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("ablation/replication");
    group.throughput(Throughput::Elements((SESSIONS * PINGS) as u64));
    group.measurement_time(std::time::Duration::from_millis(150));
    let round = std::sync::atomic::AtomicU64::new(0);
    group.bench_function("reads-single-node", |b| {
        b.iter(|| {
            let seed = 0xf100 + round.fetch_add(1, Ordering::Relaxed);
            let serve = world.cas.serve(&world.network, "cas:abl-r1", SESSIONS, seed);
            read_burst(&world, &["cas:abl-r1"], seed);
            serve.join().expect("serve");
        });
    });
    group.bench_function("reads-primary-plus-2-followers", |b| {
        b.iter(|| {
            let seed = 0xf200 + round.fetch_add(1, Ordering::Relaxed);
            // 48 sessions round-robin over 3 addresses: 16 each.
            let serves = [
                world.cas.serve(&world.network, "cas:abl-r3a", SESSIONS / 3, seed),
                followers[0].serve(&world.network, "cas:abl-r3b", SESSIONS / 3, seed + 1),
                followers[1].serve(&world.network, "cas:abl-r3c", SESSIONS / 3, seed + 2),
            ];
            read_burst(&world, &["cas:abl-r3a", "cas:abl-r3b", "cas:abl-r3c"], seed);
            for serve in serves {
                serve.join().expect("serve");
            }
        });
    });
    group.finish();
}

fn bench_status(c: &mut Criterion) {
    use sinclave::protocol::Message;
    use sinclave_bench::{fan_in_burst, BenchWorld, ServePath};
    use sinclave_cas::{serve_status, MiddlewareConfig};
    use sinclave_net::SecureChannel;
    use sinclave_runtime::ProgramImage;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    // Gate 1 — the views are live and correct under real traffic. One
    // grant's worth of load must show up in all three views, over both
    // transports (plaintext probe and protocol opcode), and the
    // drain-then-persist shutdown must leave exactly one snapshot.
    {
        let world = BenchWorld::new(0xaca);
        let packaged = world.package(&ProgramImage::interpreter("python-3.8", 8));
        let status = serve_status(&world.cas, &world.network, "cas:abl-status", 8);
        let server = world.cas.serve(&world.network, "cas:abl-stat-srv", 1, 0xd5);
        let conn = world.network.connect("cas:abl-stat-srv").expect("connect");
        let mut rng = StdRng::seed_from_u64(0xd6);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
        chan.send(
            &Message::GrantRequest {
                common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                base_hash: packaged.signed.base_hash.encode().to_vec(),
            }
            .to_bytes(),
        )
        .expect("send");
        let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
        assert!(matches!(reply, Message::GrantResponse { .. }), "got {reply:?}");
        // Same views over the regular protocol.
        chan.send(&Message::StatusRequest { view: "health".into() }.to_bytes()).expect("send");
        let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
        let Message::StatusResponse { body } = reply else { panic!("expected status, {reply:?}") };
        assert!(body.starts_with("status: healthy\n"), "{body}");
        drop(chan);
        server.join().expect("serve");

        let probe = |view: &str| -> String {
            let conn = world.network.connect("cas:abl-status").expect("probe connect");
            conn.send(view.as_bytes().to_vec()).expect("probe send");
            String::from_utf8(conn.recv().expect("probe recv")).expect("utf-8 body")
        };
        assert!(probe("health").starts_with("status: healthy\n"));
        assert!(probe("metrics").contains("\ncas_grants_issued 1\n"));
        let histograms = probe("histograms");
        for stage in ["verify", "sign", "seal", "journal_flush", "request"] {
            assert!(
                !histograms.contains(&format!("{stage} count=0 ")),
                "stage {stage} recorded nothing:\n{histograms}"
            );
        }
        world.cas.shutdown().expect("shutdown");
        status.join().expect("status listener drains");
        assert_eq!(world.cas.stats.snapshot().snapshot_persisted, 1);
    }

    // The measurement — operability must be nearly free. The same
    // mostly-idle fan-in burst with the status plane dark versus lit
    // (listener up, one probe connection cycling all three views the
    // whole time). The instrumentation itself — per-stage histogram
    // records — is always on, so "dark" already pays it; "lit" adds
    // the rendering load. The acceptance bar is <1% throughput cost;
    // criterion's report is the evidence (a hard assert on wall-clock
    // deltas would be flaky on shared CI hardware).
    const CONNECTIONS: usize = 256;
    const PINGS: usize = 4;
    let path = ServePath::Reactor { loops: 2, compute: 2 };
    let world = BenchWorld::new(0xacb);
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_secs(600)),
        idle_timeout: Some(Duration::from_secs(600)),
        ..MiddlewareConfig::default()
    });
    let mut group = c.benchmark_group("ablation/status");
    group.throughput(Throughput::Elements((CONNECTIONS * PINGS) as u64));
    group.measurement_time(std::time::Duration::from_millis(150));
    let round = AtomicU64::new(0);
    group.bench_function("fan-in-status-dark", |b| {
        b.iter(|| {
            let seed = 0xe400 + round.fetch_add(1, Ordering::Relaxed);
            fan_in_burst(&world, "cas:abl-sd", CONNECTIONS, PINGS, &path, seed);
        });
    });
    group.bench_function("fan-in-status-lit", |b| {
        b.iter(|| {
            let seed = 0xe500 + round.fetch_add(1, Ordering::Relaxed);
            let status = serve_status(&world.cas, &world.network, "cas:abl-sl", 1);
            let stop = Arc::new(AtomicBool::new(false));
            let prober = {
                let stop = Arc::clone(&stop);
                let network = world.network.clone();
                std::thread::spawn(move || {
                    let conn = network.connect("cas:abl-sl").expect("probe connect");
                    while !stop.load(Ordering::Relaxed) {
                        for view in ["health", "metrics", "histograms"] {
                            conn.send(view.as_bytes().to_vec()).expect("probe send");
                            conn.recv().expect("probe recv");
                        }
                    }
                })
            };
            fan_in_burst(&world, "cas:abl-sl-fan", CONNECTIONS, PINGS, &path, seed);
            stop.store(true, Ordering::Relaxed);
            prober.join().expect("prober");
            status.join().expect("status listener retires");
        });
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    use sinclave::protocol::Message;
    use sinclave_bench::{fan_in_burst, BenchWorld, ServePath};
    use sinclave_cas::trace::RecorderStats;
    use sinclave_cas::MiddlewareConfig;
    use sinclave_net::SecureChannel;
    use sinclave_runtime::ProgramImage;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    // Gate — bit-identity. Tracing dark (the default) and tracing lit
    // must both serve a plain, untraced client byte-for-byte like the
    // pre-trace server did: dark mints nothing at all, and a lit
    // server only echoes trace context to callers that sent one. Two
    // worlds from the same seed hold identical keys, so the decrypted
    // reply records must match exactly.
    let script = |lit: bool| -> Vec<Vec<u8>> {
        let world = BenchWorld::new(0xacc);
        let packaged = world.package(&ProgramImage::interpreter("python-3.8", 8));
        let addr = if lit { "cas:abl-tr-lit" } else { "cas:abl-tr-dark" };
        if lit {
            world.cas.tracer().set_enabled(true);
            world.cas.tracer().set_sample_every(1);
        }
        let server = world.cas.serve_reactor_with(&world.network, addr, 2, 0xd8, 1, 1);
        let mut replies = Vec::new();
        for session in 0..2u64 {
            let conn = world.network.connect(addr).expect("connect");
            let mut rng = StdRng::seed_from_u64(0x7ace0 + session);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            for request in [
                Message::GrantRequest {
                    common_sigstruct: packaged.signed.common_sigstruct.to_bytes(),
                    base_hash: packaged.signed.base_hash.encode().to_vec(),
                },
                Message::ChallengeRequest,
                Message::Ping,
            ] {
                chan.send(&request.to_bytes()).expect("send");
                replies.push(chan.recv().expect("recv"));
            }
        }
        server.join().expect("serve");
        let stats = world.cas.tracer().recorder().stats();
        if lit {
            assert!(stats.sampled > 0, "lit server with keep-everything sampling kept nothing");
        } else {
            assert_eq!(stats, RecorderStats::default(), "dark server recorded trace traffic");
        }
        replies
    };
    assert_eq!(
        script(false),
        script(true),
        "tracing must not change client-visible bytes for untraced callers"
    );

    // The measurement: the 256-connection mostly-idle fan-in with
    // tracing dark versus lit at keep-everything sampling. The
    // acceptance bar matches the status plane's: the lit column must
    // stay within a few percent; criterion's report is the evidence (a
    // hard assert on wall-clock deltas would be flaky on shared CI
    // hardware).
    const CONNECTIONS: usize = 256;
    const PINGS: usize = 4;
    let path = ServePath::Reactor { loops: 2, compute: 2 };
    let world = BenchWorld::new(0xacd);
    // Idle sessions are the scenario, not a fault: generous deadlines.
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_secs(600)),
        idle_timeout: Some(Duration::from_secs(600)),
        ..MiddlewareConfig::default()
    });
    let mut group = c.benchmark_group("ablation/trace");
    group.throughput(Throughput::Elements((CONNECTIONS * PINGS) as u64));
    group.measurement_time(std::time::Duration::from_millis(150));
    let round = AtomicU64::new(0);
    group.bench_function("fan-in-trace-dark", |b| {
        world.cas.tracer().set_enabled(false);
        b.iter(|| {
            let seed = 0xe600 + round.fetch_add(1, Ordering::Relaxed);
            fan_in_burst(&world, "cas:abl-td", CONNECTIONS, PINGS, &path, seed);
        });
    });
    group.bench_function("fan-in-trace-lit", |b| {
        world.cas.tracer().set_enabled(true);
        world.cas.tracer().set_sample_every(1);
        b.iter(|| {
            let seed = 0xe700 + round.fetch_add(1, Ordering::Relaxed);
            fan_in_burst(&world, "cas:abl-tl", CONNECTIONS, PINGS, &path, seed);
        });
    });
    world.cas.tracer().set_enabled(false);
    group.finish();
}

criterion_group!(
    ablations,
    bench_prediction_vs_remeasure,
    bench_prepared_vs_cold,
    bench_signer_key_size,
    bench_crt,
    bench_mont_sqr,
    bench_batch_issue,
    bench_verify_cache,
    bench_warm_restart,
    bench_journal,
    bench_reactor,
    bench_replication,
    bench_status,
    bench_trace
);
criterion_main!(ablations);
