//! Fig. 9 — "The performance overhead of SinClave with real-world
//! workloads": Python + encrypted volume, OpenVINO-style inference and
//! PyTorch-style training, attested end to end under the baseline and
//! SinClave flows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinclave_bench::BenchWorld;
use sinclave_cas::policy::PolicyMode;
use sinclave_runtime::scone::StartOptions;
use sinclave_runtime::workload::{self, Workload};

fn run_once(
    world: &BenchWorld,
    packaged: &sinclave_runtime::scone::PackagedApp,
    w: &Workload,
    sinclave_mode: bool,
    seed: u64,
) {
    let opts = StartOptions::new("cas:fig9", "wl").with_volume(w.volume.clone()).with_seed(seed);
    let app = if sinclave_mode {
        world.host.start_sinclave(packaged, &opts).expect("run")
    } else {
        world.host.start_baseline(packaged, &opts).expect("run")
    };
    assert!(app.outcome.stdout.last().expect("output").ends_with("-done"));
}

fn bench_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/macro");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));

    // Criterion tracks absolute durations; the *overhead percentages*
    // of Fig. 9 are computed by the `experiments` harness at realistic
    // (seconds-long) scales. Scales here are kept moderate so the
    // whole suite stays fast.
    type WorkloadFactory = fn() -> Workload;
    let factories: &[(&str, WorkloadFactory)] = &[
        ("Python", || workload::python_volume(2_000)),
        ("OpenVINO", || workload::openvino_inference(12)),
        ("PyTorch", || workload::pytorch_training(12)),
    ];

    for (name, make) in factories {
        for (system, sinclave_mode) in [("baseline", false), ("sinclave", true)] {
            let world = BenchWorld::new(0x90 ^ sinclave_mode as u64);
            let cas = world.cas.clone();
            let _server = cas.serve(&world.network, "cas:fig9", 1_000_000, 9);
            let sample = make();
            let image = if sinclave_mode {
                sample.image.clone().sinclave_aware()
            } else {
                sample.image.clone()
            };
            let packaged = world.package(&image);
            world.add_policy("wl", &packaged, PolicyMode::Either, sample.config.clone());
            group.bench_function(BenchmarkId::new(system, *name), |b| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    // Fresh volume per iteration: workloads write.
                    run_once(&world, &packaged, &make(), sinclave_mode, i);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(fig9, bench_macro);
criterion_main!(fig9);
