//! Fixture-driven rule tests: every fixture under `tests/fixtures/`
//! carries `EXPECT: SA00N [xM]` markers (finding on this line, M
//! times) or `EXPECT@-1: SA00N` (finding one line above — used where
//! the finding anchors on a line that cannot hold a marker, like a
//! reason-less waiver). The driver analyzes each fixture under a
//! virtual workspace path that triggers the right rule scopes and
//! requires the finding multiset to equal the marker multiset — so a
//! fixture asserts both "the rule fires here with this ID and line"
//! and "nothing else fires anywhere in the file".

use std::collections::BTreeMap;
use std::path::Path;

use sinclave_analysis::{analyze, Config, LockManifest, SourceFile};

/// Manifest the lock-order fixtures are written against.
const FIXTURE_MANIFEST: &str = "10 journal\n20 volume\n30 shards, policies\n40 queue\n";

/// A serving-path label: SA001/SA002/SA003/SA005 scopes apply.
const SERVING_PATH: &str = "crates/cas/src/fixture.rs";
/// The unsafe island label: SA004's SAFETY-comment mode applies.
const ISLAND_PATH: &str = "crates/crypto/src/sha256.rs";
/// A replay-scope label: SA006 applies.
const REPLAY_PATH: &str = "crates/fs/src/journal.rs";

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

/// Parses the `(rule id, line) -> count` multiset the fixture expects.
fn expected_findings(bytes: &[u8]) -> BTreeMap<(String, u32), usize> {
    let mut expected = BTreeMap::new();
    for (i, line) in String::from_utf8_lossy(bytes).lines().enumerate() {
        let line_no = (i + 1) as u32;
        let (anchor, rest) = if let Some(pos) = line.find("EXPECT@-1:") {
            (line_no - 1, &line[pos + "EXPECT@-1:".len()..])
        } else if let Some(pos) = line.find("EXPECT:") {
            (line_no, &line[pos + "EXPECT:".len()..])
        } else {
            // Prose mentioning EXPECT without the marker colon is not
            // a marker.
            continue;
        };
        let mut words = rest.split_whitespace();
        let id = words
            .next()
            .expect("EXPECT marker without a rule id")
            .trim_end_matches(|c: char| !c.is_ascii_alphanumeric())
            .to_owned();
        assert!(id.starts_with("SA"), "bad rule id `{id}` on line {line_no}");
        let count = words
            .next()
            .and_then(|w| w.strip_prefix('x'))
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or(1);
        *expected.entry((id, anchor)).or_insert(0) += count;
    }
    expected
}

/// Analyzes one fixture under `path` and compares the finding multiset
/// to the fixture's EXPECT markers.
fn check_fixture(name: &str, path: &str) {
    let bytes = fixture_bytes(name);
    let expected = expected_findings(&bytes);
    let config =
        Config { manifest: LockManifest::parse(FIXTURE_MANIFEST).expect("fixture manifest") };
    let analysis = analyze(&[SourceFile::parse(path, bytes)], &config);
    let mut actual: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for finding in &analysis.findings {
        *actual.entry((finding.rule.id().to_owned(), finding.line)).or_insert(0) += 1;
    }
    assert_eq!(
        actual,
        expected,
        "{name}: finding multiset mismatch\nfindings:\n{}",
        analysis.findings.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn panic_positive() {
    check_fixture("panic_positive.rs", SERVING_PATH);
}

#[test]
fn panic_negative() {
    check_fixture("panic_negative.rs", SERVING_PATH);
}

#[test]
fn panic_rule_is_scoped_to_serving_crates() {
    // The same violations under a non-serving path produce nothing.
    let bytes = fixture_bytes("panic_positive.rs");
    let analysis =
        analyze(&[SourceFile::parse("crates/sgx/src/fixture.rs", bytes)], &Config::default());
    assert!(analysis.findings.is_empty(), "out-of-scope findings: {:?}", analysis.findings);
}

#[test]
fn lock_order_positive() {
    check_fixture("lock_order_positive.rs", SERVING_PATH);
}

#[test]
fn lock_order_negative() {
    check_fixture("lock_order_negative.rs", SERVING_PATH);
}

#[test]
fn durability_positive() {
    check_fixture("durability_positive.rs", SERVING_PATH);
}

#[test]
fn durability_negative() {
    check_fixture("durability_negative.rs", SERVING_PATH);
}

#[test]
fn unsafe_positive() {
    check_fixture("unsafe_positive.rs", ISLAND_PATH);
}

#[test]
fn unsafe_negative() {
    check_fixture("unsafe_negative.rs", ISLAND_PATH);
}

#[test]
fn unsafe_outside_island_fires_even_when_documented() {
    let bytes = fixture_bytes("unsafe_negative.rs");
    let analysis = analyze(&[SourceFile::parse(SERVING_PATH, bytes)], &Config::default());
    let unsafe_findings: Vec<_> =
        analysis.findings.iter().filter(|f| f.rule.id() == "SA004").collect();
    assert_eq!(unsafe_findings.len(), 1, "findings: {:?}", analysis.findings);
    assert!(unsafe_findings[0].message.contains("outside the whitelisted"));
}

#[test]
fn secret_positive() {
    check_fixture("secret_positive.rs", SERVING_PATH);
}

#[test]
fn secret_negative() {
    check_fixture("secret_negative.rs", SERVING_PATH);
}

#[test]
fn determinism_positive() {
    check_fixture("determinism_positive.rs", REPLAY_PATH);
}

#[test]
fn determinism_negative() {
    check_fixture("determinism_negative.rs", REPLAY_PATH);
}

#[test]
fn determinism_rule_is_scoped_to_replay_paths() {
    let bytes = fixture_bytes("determinism_positive.rs");
    let analysis = analyze(&[SourceFile::parse(SERVING_PATH, bytes)], &Config::default());
    assert!(
        analysis.findings.iter().all(|f| f.rule.id() != "SA006"),
        "SA006 fired outside replay scope: {:?}",
        analysis.findings
    );
}

#[test]
fn waiver_hygiene() {
    check_fixture("waiver_hygiene.rs", SERVING_PATH);
}

#[test]
fn waived_findings_are_reported_separately() {
    let bytes = fixture_bytes("panic_negative.rs");
    let analysis = analyze(&[SourceFile::parse(SERVING_PATH, bytes)], &Config::default());
    assert!(analysis.findings.is_empty());
    assert_eq!(analysis.waived.len(), 1, "waived: {:?}", analysis.waived);
    assert_eq!(analysis.waived[0].rule.id(), "SA001");
}
