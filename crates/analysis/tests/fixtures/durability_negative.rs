// Fixture: SA003 negatives — correct ordering, and unannotated fns
// are never checked.

impl Server {
    // invariant: journal-before-ack
    fn journal_then_ack(&self, record: Record) -> Result<(), Error> {
        self.store.append_journal(&record.bytes())?;
        self.hub.publish(&record.bytes());
        self.reply_tx.send(Reply::Ok)?;
        Ok(())
    }

    // invariant: journal-before-ack
    fn commit_counts_as_journal(&self, record: Record) -> Result<(), Error> {
        self.pipe.commit(record)?;
        self.reply_tx.send(Reply::Ok)?;
        Ok(())
    }

    // Unannotated: send-before-journal here is some other fn's
    // business (docs discussing `// invariant: journal-before-ack`
    // do not bind either).
    fn unannotated(&self, record: Record) -> Result<(), Error> {
        self.reply_tx.send(Reply::Ok)?;
        self.store.append_journal(&record.bytes())?;
        Ok(())
    }
}
