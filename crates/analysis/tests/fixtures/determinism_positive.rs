// Fixture: SA006 positives, analyzed under a replay-scope path.

use std::time::{Instant, SystemTime}; // EXPECT: SA006 x2

fn replay(bytes: &[u8]) -> State {
    let started = Instant::now(); // EXPECT: SA006
    let stamp = SystemTime::now(); // EXPECT: SA006
    decode(bytes, started, stamp)
}
