// Fixture: SA006 negatives, analyzed under a replay-scope path.

fn replay(bytes: &[u8]) -> State {
    // Timestamps that arrive *in the bytes* are fine — "Instant" and
    // "SystemTime" in comments and strings are inert.
    let stamp = u64::from_be_bytes(bytes[..8].try_into().unwrap_or_default());
    State { stamp, label: "no Instant here" }
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_things() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
