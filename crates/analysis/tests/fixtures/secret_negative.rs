// Fixture: SA005 negatives.

// Non-secret types may derive freely.
#[derive(Clone, Debug)]
struct PublicParams {
    modulus_bits: u32,
}

// Secret types with hand-written redacting impls are the sanctioned
// pattern.
struct AeadKey {
    bytes: [u8; 32],
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AeadKey(redacted)")
    }
}

fn fine(public_key: &[u8], key_fingerprint: &[u8], keyboard: &str) {
    // public/fingerprint spellings are exempt; `keyboard` is not a
    // `key` ident; method calls are not value idents.
    println!("peer {:x?} fp {:x?}", public_key, key_fingerprint);
    println!("layout {keyboard}");
    println!("rule {}", rule.key());
}

fn annotate_fine(active: &mut ActiveTrace) {
    // Counts and public spellings never hold key bytes; method calls
    // are not value idents.
    active.annotate("batch_len", batch_len);
    trace::annotate("public_key_bits", public_key_bits);
    trace::annotate("rule", rule.key());
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assert_on_keys() {
        let key = [0u8; 32];
        assert_eq!(key, [0u8; 32], "mismatch: {:?}", key);
    }
}
