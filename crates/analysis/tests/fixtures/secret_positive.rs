// Fixture: SA005 positives.

#[derive(Clone, Debug)] // EXPECT: SA005
struct AeadKey {
    bytes: [u8; 32],
}

#[derive(Debug, Display)] // EXPECT: SA005 x2
struct RsaPrivateKey {
    d: Vec<u8>,
}

fn log_key(key: &[u8], volume_key: &[u8], shared_secret: &[u8]) {
    println!("key bytes: {:?}", key); // EXPECT: SA005
    let msg = format!("volume {:x?}", volume_key); // EXPECT: SA005
    eprintln!("derived {shared_secret:?}"); // EXPECT: SA005
    let _ = msg;
}

fn annotate_leak(key: u64, shared_secret: u64) {
    trace::annotate("k", key); // EXPECT: SA005
    active.annotate("s", shared_secret); // EXPECT: SA005
}
