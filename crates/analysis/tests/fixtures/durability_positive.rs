// Fixture: SA003 positives. Findings for a missing or detached
// journal call anchor on the annotation line itself, so those EXPECT
// markers share the annotation's line.

impl Server {
    // invariant: journal-before-ack
    fn ack_then_journal(&self, record: Record) -> Result<(), Error> {
        self.reply_tx.send(Reply::Ok)?; // EXPECT: SA003
        self.hub.publish(&record.bytes()); // EXPECT: SA003
        self.store.append_journal(&record.bytes())?;
        Ok(())
    }

    // invariant: journal-before-ack (EXPECT: SA003)
    fn never_journals(&self, record: Record) -> Result<(), Error> {
        self.reply_tx.try_send(Reply::Ok)?;
        Ok(())
    }
}

// invariant: journal-before-ack (EXPECT: SA003)
const DETACHED: u32 = 0;
