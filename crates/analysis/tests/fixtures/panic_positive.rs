// Fixture: SA001 positives. Analyzed under the virtual path
// crates/cas/src/fixture.rs so the serving-path scope applies.
// EXPECT lines name the rule and the line the finding anchors to.

fn serve(input: Option<u32>) -> u32 {
    let v = input.unwrap(); // EXPECT: SA001
    let w = input.expect("configured"); // EXPECT: SA001
    if v + w == 0 {
        panic!("zero"); // EXPECT: SA001
    }
    if v > 100 {
        unreachable!(); // EXPECT: SA001
    }
    todo!() // EXPECT: SA001
}
