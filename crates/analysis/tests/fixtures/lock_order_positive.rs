// Fixture: SA002 positives, checked against the fixture manifest
// (10 journal / 20 volume / 30 shards,policies / 40 queue).

fn inverted(&self) {
    let volume = self.volume.lock();
    let journal = self.journal.lock(); // EXPECT: SA002
    drop(journal);
    drop(volume);
}

fn same_class_nesting(&self, i: usize, j: usize) {
    let a = self.shards[i].write();
    let b = self.shards[j].write(); // EXPECT: SA002
    drop(b);
    drop(a);
}

fn alias_same_class(&self, i: usize) {
    let a = self.shards[i].write();
    let b = self.policies.read(); // EXPECT: SA002
    drop(b);
    drop(a);
}

fn inverted_through_temp(&self) {
    let q = self.queue.lock();
    self.volume.lock().flush(); // EXPECT: SA002
    drop(q);
}
