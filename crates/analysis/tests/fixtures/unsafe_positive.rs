// Fixture: SA004 positives, analyzed under the whitelisted island
// path. (The driver also re-analyzes unsafe_negative.rs under a
// non-island path, where even a documented `unsafe` fires.)

fn undocumented(ptr: *const u8) -> u8 {
    // A nearby comment without the marker does not count.
    unsafe { *ptr } // EXPECT: SA004
}

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees ptr is valid for one byte.
    unsafe { *ptr }
}
