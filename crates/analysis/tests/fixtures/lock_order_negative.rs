// Fixture: SA002 negatives — manifest-ordered nesting, scope-bounded
// guards, explicit drops, and unranked locks. None may fire.

fn ordered(&self) {
    let journal = self.journal.lock();
    let volume = self.volume.lock();
    let shard = self.shards[0].write();
    drop(shard);
    drop(volume);
    drop(journal);
}

fn sequential_not_nested(&self) {
    {
        let volume = self.volume.lock();
        volume.flush();
    }
    let journal = self.journal.lock();
    journal.sync();
}

fn released_by_drop(&self) {
    let volume = self.volume.lock();
    drop(volume);
    let journal = self.journal.lock();
    journal.sync();
}

fn temp_dies_at_statement_end(&self) {
    self.volume.lock().flush();
    let journal = self.journal.lock();
    journal.sync();
}

fn unranked_is_invisible(&self) {
    let scratch = self.scratch.lock();
    let journal = self.journal.lock();
    drop(journal);
    drop(scratch);
}
