// Fixture: SA000 waiver hygiene, analyzed under a serving path.

fn used_with_reason(input: Option<u32>) -> u32 {
    // lint: allow(panic) — fixture: justified waiver, no SA000
    input.unwrap()
}

// lint: allow(panic) — EXPECT: SA000 (this waiver matches nothing)
fn stale() {}

fn empty_reason(input: Option<u32>) -> u32 {
    // lint: allow(panic)
    input.unwrap() // EXPECT@-1: SA000
}

// lint: allow(spooky) — EXPECT: SA000 (unknown rule key)
fn unknown_rule() {}

// lint: deny(panic) EXPECT: SA000 (malformed: not allow())
fn malformed() {}
