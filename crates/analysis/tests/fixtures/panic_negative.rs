// Fixture: SA001 negatives — none of these may fire.

fn serve(input: Option<u32>) -> Result<u32, ()> {
    // unwrap_or / unwrap_or_else / unwrap_or_default are not unwrap.
    let a = input.unwrap_or(0);
    let b = input.unwrap_or_else(|| 1);
    let c = input.unwrap_or_default();
    // Strings and comments mentioning unwrap() or panic! are inert.
    let s = "call unwrap() then panic!(now)";
    /* x.unwrap(); panic!("in a comment") */
    // A reasoned waiver suppresses the finding on the next line.
    // lint: allow(panic) — fixture demonstrates a justified waiver
    let d = input.unwrap();
    let _ = s;
    Ok(a + b + c + d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        Option::<u32>::None.expect_err_is_fine();
    }
}
