// Fixture: SA004 negatives under the whitelisted island path.

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees ptr is valid for one byte.
    unsafe { *ptr }
}

fn mentions_only(s: &str) -> bool {
    // The word unsafe in comments and strings is inert.
    s == "unsafe"
}
