//! Property tests for the lexer: it must never panic, must produce
//! in-bounds ordered spans, and must classify strings and comments
//! correctly on arbitrary byte soup — the analyzer runs on every file
//! in the tree, so a lexer crash would take the whole gate down with
//! it.

use proptest::prelude::*;
use sinclave_analysis::lexer::{lex, TokenKind};

/// Bytes weighted toward the characters that drive lexer state
/// transitions (quotes, slashes, stars, hashes, escapes), plus raw
/// ASCII and arbitrary high bytes.
fn lexer_soup() -> impl Strategy<Value = Vec<u8>> {
    let byte =
        prop_oneof![proptest::sample::select(b"\"'/*#rb\\\n{}().; \t".to_vec()), any::<u8>(),];
    proptest::collection::vec(byte, 0..200)
}

proptest! {
    #[test]
    fn never_panics_and_spans_are_sane(bytes in lexer_soup()) {
        let tokens = lex(&bytes);
        let mut prev_end = 0usize;
        for tok in &tokens {
            prop_assert!(tok.start < tok.end, "empty span");
            prop_assert!(tok.end <= bytes.len(), "span out of bounds");
            prop_assert!(tok.start >= prev_end, "overlapping or unordered spans");
            prev_end = tok.end;
        }
    }

    #[test]
    fn gaps_between_tokens_are_whitespace(bytes in lexer_soup()) {
        let tokens = lex(&bytes);
        let mut covered = vec![false; bytes.len()];
        for tok in &tokens {
            for slot in &mut covered[tok.start..tok.end] {
                *slot = true;
            }
        }
        for (i, &b) in bytes.iter().enumerate() {
            if !covered[i] {
                prop_assert!(
                    b.is_ascii_whitespace(),
                    "uncovered non-whitespace byte {b:#x} at {i}"
                );
            }
        }
    }

    #[test]
    fn line_numbers_are_monotone(bytes in lexer_soup()) {
        let tokens = lex(&bytes);
        let mut prev = 1u32;
        for tok in &tokens {
            prop_assert!(tok.line >= prev, "line numbers went backwards");
            prev = tok.line;
        }
    }

    #[test]
    fn code_inside_strings_never_tokenizes(payload in "[a-z_]{1,10}") {
        // Whatever identifier we embed in a string literal, it must
        // come back as one Str token, never as an Ident.
        let src = format!("let x = \"{payload}.unwrap()\";");
        let bytes = src.as_bytes();
        let idents: Vec<&str> = lex(bytes)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(bytes))
            .collect();
        prop_assert_eq!(idents, vec!["let", "x"]);
    }

    #[test]
    fn comments_swallow_their_content(payload in "[a-z_]{1,10}") {
        let src = format!("a /* {payload}() */ b // {payload}!\n");
        let bytes = src.as_bytes();
        let (code, comments): (Vec<_>, Vec<_>) =
            lex(bytes).into_iter().partition(|t| !t.is_comment());
        prop_assert_eq!(code.len(), 2, "expected exactly `a` and `b`");
        prop_assert_eq!(comments.len(), 2, "expected one block + one line comment");
    }
}
