//! The rule engine: rule identities, findings, scopes, and the
//! waiver-aware analysis entry point.
//!
//! Each rule walks the [`SourceFile`] token model and emits
//! [`Finding`]s. The engine then applies waiver comments
//! (`// lint: allow(<key>) — <reason>`, on the finding's line or the
//! line directly above) and turns waiver problems — missing reason,
//! unknown rule key, waiver matching no finding, unparseable `lint:`
//! comment — into findings of their own, so the waiver channel cannot
//! silently rot.

mod determinism;
mod durability;
mod locks;
mod panic_freedom;
mod secrets;
mod unsafety;

use crate::manifest::LockManifest;
use crate::source::SourceFile;

/// The rule catalog. IDs are stable; `key` is the waiver spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// SA000: waiver hygiene (not waivable).
    WaiverHygiene,
    /// SA001: no `unwrap`/`expect`/`panic!`/`todo!` on serving paths.
    Panic,
    /// SA002: nested lock acquisition must follow the manifest order.
    LockOrder,
    /// SA003: in annotated fns, no send/publish before the journal
    /// append.
    JournalBeforeAck,
    /// SA004: `unsafe` only in the whitelisted island, with `SAFETY:`.
    UnsafeHygiene,
    /// SA005: key-bearing types never derive `Debug`/`Display`; keyish
    /// identifiers never reach format macros.
    SecretHygiene,
    /// SA006: no wall-clock reads in replay/decode paths.
    Determinism,
}

impl Rule {
    /// Stable diagnostic ID.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::WaiverHygiene => "SA000",
            Rule::Panic => "SA001",
            Rule::LockOrder => "SA002",
            Rule::JournalBeforeAck => "SA003",
            Rule::UnsafeHygiene => "SA004",
            Rule::SecretHygiene => "SA005",
            Rule::Determinism => "SA006",
        }
    }

    /// The key used in waiver comments.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Rule::WaiverHygiene => "waiver",
            Rule::Panic => "panic",
            Rule::LockOrder => "lock-order",
            Rule::JournalBeforeAck => "journal-before-ack",
            Rule::UnsafeHygiene => "unsafe",
            Rule::SecretHygiene => "secret",
            Rule::Determinism => "determinism",
        }
    }

    /// Every waivable rule (everything but waiver hygiene itself).
    #[must_use]
    pub fn waivable() -> &'static [Rule] {
        &[
            Rule::Panic,
            Rule::LockOrder,
            Rule::JournalBeforeAck,
            Rule::UnsafeHygiene,
            Rule::SecretHygiene,
            Rule::Determinism,
        ]
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.rule.key(),
            self.message
        )
    }
}

/// Analyzer configuration: the lock manifest (rule SA002's input).
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// The declared lock acquisition order.
    pub manifest: LockManifest,
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unwaived findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a waiver (with a recorded reason).
    pub waived: Vec<Finding>,
}

/// Serving-path crates rule SA001 (panic-freedom) covers.
const PANIC_SCOPE: &[&str] =
    &["crates/cas/src/", "crates/net/src/", "crates/fs/src/", "crates/core/src/"];

/// The one module allowed to contain `unsafe` (the SHA-NI island).
const UNSAFE_WHITELIST: &[&str] = &["crates/crypto/src/sha256.rs"];

/// Replay/decode paths rule SA006 (determinism) covers: bit-identical
/// recovery must not read wall clocks.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/core/src/replication.rs",
    "crates/core/src/journal_record.rs",
    "crates/core/src/snapshot.rs",
    "crates/fs/src/journal.rs",
];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|prefix| path.starts_with(prefix))
}

/// Runs every rule over one file. Raw findings — waivers not applied.
#[must_use]
pub fn analyze_file(file: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if in_scope(&file.path, PANIC_SCOPE) {
        panic_freedom::check(file, &mut out);
    }
    locks::check(file, &config.manifest, &mut out);
    durability::check(file, &mut out);
    unsafety::check(file, in_scope(&file.path, UNSAFE_WHITELIST), &mut out);
    secrets::check(file, &mut out);
    if in_scope(&file.path, DETERMINISM_SCOPE) {
        determinism::check(file, &mut out);
    }
    out
}

/// Analyzes a set of files: runs every rule, applies waivers, and
/// appends waiver-hygiene findings.
#[must_use]
pub fn analyze(files: &[SourceFile], config: &Config) -> Analysis {
    let mut analysis = Analysis::default();
    for file in files {
        let raw = analyze_file(file, config);
        let mut waiver_used = vec![false; file.waivers.len()];
        for finding in raw {
            let waiver = file.waivers.iter().enumerate().find(|(_, w)| {
                w.rule == finding.rule.key()
                    && (w.line == finding.line || w.line + 1 == finding.line)
            });
            match waiver {
                Some((i, _)) => {
                    waiver_used[i] = true;
                    analysis.waived.push(finding);
                }
                None => analysis.findings.push(finding),
            }
        }
        for (i, waiver) in file.waivers.iter().enumerate() {
            let known = Rule::waivable().iter().any(|r| r.key() == waiver.rule);
            let problem = if !known {
                Some(format!(
                    "waiver names unknown rule `{}` (known: {})",
                    waiver.rule,
                    Rule::waivable().iter().map(|r| r.key()).collect::<Vec<_>>().join(", ")
                ))
            } else if waiver.reason.is_empty() {
                Some(format!("waiver for `{}` carries no reason", waiver.rule))
            } else if !waiver_used[i] {
                Some(format!(
                    "waiver for `{}` matches no finding on this or the next line — remove it",
                    waiver.rule
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                analysis.findings.push(Finding {
                    rule: Rule::WaiverHygiene,
                    path: file.path.clone(),
                    line: waiver.line,
                    message,
                });
            }
        }
        for malformed in &file.malformed_waivers {
            analysis.findings.push(Finding {
                rule: Rule::WaiverHygiene,
                path: file.path.clone(),
                line: malformed.line,
                message: format!(
                    "unparseable `lint:` comment ({}) — syntax: `// lint: allow(<rule>) — <reason>`",
                    malformed.problem
                ),
            });
        }
    }
    analysis.findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    analysis.waived.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    analysis
}

/// True when the code token at `ci` is an ident `name` called as a
/// function or method (`name(` follows).
fn is_call(file: &SourceFile, ci: usize, name: &str) -> bool {
    file.ct(ci).kind == crate::lexer::TokenKind::Ident
        && file.ct_text(ci) == name
        && file.punct_at(ci + 1, '(')
}
