//! SA002 — lock-order discipline.
//!
//! The manifest ranks every named lock; a guard may only be acquired
//! while holding guards of strictly lower rank, and never while
//! holding a guard of the same class. The rule tracks guard lifetimes
//! lexically:
//!
//! - `let g = self.x.lock()…;` — guard `g` lives to the end of its
//!   enclosing block (or an explicit `drop(g)`).
//! - `let _ = …` and un-bound acquisitions (`self.x.lock().f();`) —
//!   the guard is a temporary; it dies at the statement's `;`, or at
//!   a `{` opening at the same depth (condition-position temporaries).
//! - Closing a block releases every guard acquired inside it.
//!
//! This is deliberately an over-approximation in one direction
//! (`match x.lock() { … }` extends the temporary through the match,
//! which we under-hold) and exact for the dominant let-bound idiom the
//! codebase uses. Receivers are resolved through one level of
//! indexing: `self.shards[i].write()` classifies as `shards`.

use crate::lexer::TokenKind;
use crate::manifest::LockManifest;
use crate::source::SourceFile;

use super::{Finding, Rule};

/// Guard-producing method names.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One held guard.
struct Held {
    /// Let-binding name, when bound.
    binding: Option<String>,
    /// Canonical class name from the manifest.
    class: String,
    /// Manifest rank.
    rank: u32,
    /// Brace depth at acquisition.
    depth: usize,
    /// Whether the guard is an unbound temporary.
    temp: bool,
}

pub(super) fn check(file: &SourceFile, manifest: &LockManifest, out: &mut Vec<Finding>) {
    if manifest.is_empty() {
        return;
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut in_let = false;
    let mut let_binding: Option<String> = None;
    for ci in 0..file.code.len() {
        let tok = file.ct(ci);
        if tok.kind == TokenKind::Punct {
            match file.ct_text(ci) {
                "{" => {
                    held.retain(|h| !(h.temp && h.depth == depth));
                    depth += 1;
                    in_let = false;
                    let_binding = None;
                }
                "}" => {
                    held.retain(|h| h.depth < depth);
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    held.retain(|h| !(h.temp && h.depth == depth));
                    in_let = false;
                    let_binding = None;
                }
                _ => {}
            }
            continue;
        }
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.ct_text(ci);
        if name == "let" && !file.in_test[ci] {
            in_let = true;
            let_binding = None;
            continue;
        }
        if in_let && let_binding.is_none() && name != "mut" && name != "ref" {
            let_binding = Some(name.to_owned());
        }
        // `drop(g)` releases the named guard.
        if name == "drop"
            && file.punct_at(ci + 1, '(')
            && ci + 2 < file.code.len()
            && file.ct(ci + 2).kind == TokenKind::Ident
            && file.punct_at(ci + 3, ')')
        {
            let dropped = file.ct_text(ci + 2);
            held.retain(|h| h.binding.as_deref() != Some(dropped));
            continue;
        }
        // Acquisition: `<receiver>.lock()` / `.read()` / `.write()`.
        let is_acquire = ACQUIRE_METHODS.contains(&name)
            && ci > 0
            && file.is_punct(ci - 1, '.')
            && file.punct_at(ci + 1, '(')
            && file.punct_at(ci + 2, ')');
        if !is_acquire || file.in_test[ci] {
            continue;
        }
        let Some(receiver) = resolve_receiver(file, ci) else { continue };
        let Some(class) = manifest.class_of(&receiver) else { continue };
        for h in &held {
            if h.rank > class.rank {
                out.push(Finding {
                    rule: Rule::LockOrder,
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "acquired `{receiver}` (rank {}) while holding `{}` (rank {}) — the \
                         manifest orders `{}` before `{}`",
                        class.rank, h.class, h.rank, class.name, h.class
                    ),
                });
            } else if h.rank == class.rank {
                out.push(Finding {
                    rule: Rule::LockOrder,
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "acquired `{receiver}` while already holding a `{}` guard of the same \
                         rank — same-class nesting deadlocks under contention",
                        h.class
                    ),
                });
            }
        }
        let bound = in_let && let_binding.as_deref() != Some("_");
        held.push(Held {
            binding: bound.then(|| let_binding.clone()).flatten(),
            class: class.name.clone(),
            rank: class.rank,
            depth,
            temp: !bound,
        });
    }
}

/// The field identifier the guard is taken from: the ident directly
/// before `.lock()`, looking through one balanced `[…]` index
/// (`self.shards[i].write()` → `shards`).
fn resolve_receiver(file: &SourceFile, method_ci: usize) -> Option<String> {
    // method_ci is the `lock`/`read`/`write` ident; method_ci - 1 is `.`.
    let mut ci = method_ci.checked_sub(2)?;
    if file.is_punct(ci, ']') {
        let mut depth = 1usize;
        while depth > 0 {
            ci = ci.checked_sub(1)?;
            if file.is_punct(ci, ']') {
                depth += 1;
            } else if file.is_punct(ci, '[') {
                depth -= 1;
            }
        }
        ci = ci.checked_sub(1)?;
    }
    (file.ct(ci).kind == TokenKind::Ident).then(|| file.ct_text(ci).to_owned())
}
