//! SA004 — unsafe hygiene.
//!
//! `unsafe` is confined to one whitelisted island (the SHA-NI
//! intrinsics in `crates/crypto/src/sha256.rs`); anywhere else it is a
//! finding regardless of justification — move the code into the island
//! or find a safe formulation. Inside the island, every `unsafe`
//! keyword must have a `// SAFETY:` comment within the three lines
//! above it explaining why the invariants hold.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{Finding, Rule};

/// How far above an `unsafe` keyword a `SAFETY:` comment may sit.
const SAFETY_COMMENT_REACH: u32 = 3;

pub(super) fn check(file: &SourceFile, whitelisted: bool, out: &mut Vec<Finding>) {
    for ci in 0..file.code.len() {
        let tok = file.ct(ci);
        if tok.kind != TokenKind::Ident || file.ct_text(ci) != "unsafe" {
            continue;
        }
        if !whitelisted {
            out.push(Finding {
                rule: Rule::UnsafeHygiene,
                path: file.path.clone(),
                line: tok.line,
                message: "`unsafe` outside the whitelisted intrinsics island \
                          (crates/crypto/src/sha256.rs) — find a safe formulation or move the \
                          code into the island"
                    .to_owned(),
            });
            continue;
        }
        let low = tok.line.saturating_sub(SAFETY_COMMENT_REACH);
        let documented = file.tokens.iter().any(|t| {
            t.is_comment()
                && t.line >= low
                && (t.line < tok.line || (t.line == tok.line && t.start < tok.start))
                && t.text(&file.bytes).contains("SAFETY:")
        });
        if !documented {
            out.push(Finding {
                rule: Rule::UnsafeHygiene,
                path: file.path.clone(),
                line: tok.line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding three lines — \
                          state why the invariants hold"
                    .to_owned(),
            });
        }
    }
}
