//! SA005 — secret hygiene.
//!
//! Three sub-checks, all non-test:
//!
//! 1. **Derive check** — key-bearing types (`AeadKey`,
//!    `RsaPrivateKey`) must not `#[derive(Debug)]` or derive
//!    `Display`: a derived formatter prints the key material field by
//!    field. Hand-written redacting impls are the sanctioned pattern.
//! 2. **Format-argument check** — identifiers that look key-bearing
//!    (`key`, `*_key`, `*secret*`, minus `public`/`fingerprint`
//!    spellings) must not appear as arguments or inline captures of
//!    format-family macros, where `{:?}`/`{}` would serialize them
//!    into logs or error strings.
//! 3. **Trace-annotation check** — the same keyish identifiers must
//!    not appear as arguments of `annotate(...)` calls: trace span
//!    annotations land in the flight recorder and are rendered by the
//!    status plane's `trace` view, which is exactly a log.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{Finding, Rule};

/// Types that own key material.
const SECRET_TYPES: &[&str] = &["AeadKey", "RsaPrivateKey"];

/// Macros whose arguments end up in formatted output.
const FMT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Whether an identifier names something that plausibly holds secret
/// bytes.
fn keyish(name: &str) -> bool {
    if name.contains("public") || name.contains("fingerprint") {
        return false;
    }
    name == "key" || name.ends_with("_key") || name.contains("secret")
}

pub(super) fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    check_derives(file, out);
    check_format_args(file, out);
    check_trace_annotations(file, out);
}

/// Flags `#[derive(Debug)]` / `#[derive(Display)]`-style attributes on
/// the secret types. Tracks the most recent derive attribute and pairs
/// it with the next `struct`/`enum` item.
fn check_derives(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut pending: Option<(u32, Vec<String>)> = None;
    let mut ci = 0usize;
    while ci < file.code.len() {
        if file.in_test[ci] {
            ci += 1;
            continue;
        }
        if file.is_punct(ci, '#') && file.punct_at(ci + 1, '[') {
            let mut idents = Vec::new();
            let mut depth = 1usize;
            let mut j = ci + 2;
            while j < file.code.len() && depth > 0 {
                if file.is_punct(j, '[') {
                    depth += 1;
                } else if file.is_punct(j, ']') {
                    depth -= 1;
                } else if file.ct(j).kind == TokenKind::Ident {
                    idents.push(file.ct_text(j).to_owned());
                }
                j += 1;
            }
            if idents.first().is_some_and(|first| first == "derive") {
                pending = Some((file.ct(ci).line, idents));
            }
            ci = j;
            continue;
        }
        if file.ct(ci).kind == TokenKind::Ident {
            let word = file.ct_text(ci);
            if word == "struct" || word == "enum" {
                let name = (ci + 1 < file.code.len() && file.ct(ci + 1).kind == TokenKind::Ident)
                    .then(|| file.ct_text(ci + 1));
                if let (Some(type_name), Some((attr_line, idents))) = (name, pending.as_ref()) {
                    if SECRET_TYPES.contains(&type_name) {
                        for formatter in ["Debug", "Display"] {
                            if idents.iter().any(|id| id == formatter) {
                                out.push(Finding {
                                    rule: Rule::SecretHygiene,
                                    path: file.path.clone(),
                                    line: *attr_line,
                                    message: format!(
                                        "`{type_name}` derives `{formatter}` — key-bearing types \
                                         must use a hand-written redacting impl"
                                    ),
                                });
                            }
                        }
                    }
                }
                pending = None;
            } else if matches!(
                word,
                "fn" | "impl" | "trait" | "mod" | "use" | "static" | "const" | "type"
            ) {
                pending = None;
            }
        }
        ci += 1;
    }
}

/// Flags keyish identifiers inside format-family macro invocations,
/// both as plain arguments and as `{ident}` inline captures in the
/// format string.
fn check_format_args(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut ci = 0usize;
    while ci < file.code.len() {
        let head = file.ct(ci).kind == TokenKind::Ident
            && FMT_MACROS.contains(&file.ct_text(ci))
            && file.punct_at(ci + 1, '!');
        if !head || file.in_test[ci] {
            ci += 1;
            continue;
        }
        let Some((open, close)) = macro_delims(file, ci + 2) else {
            ci += 2;
            continue;
        };
        let mut depth = 1usize;
        let mut j = ci + 3;
        while j < file.code.len() && depth > 0 {
            let tok = file.ct(j);
            if file.is_punct(j, open) {
                depth += 1;
            } else if file.is_punct(j, close) {
                depth -= 1;
            } else if tok.kind == TokenKind::Ident
                && keyish(file.ct_text(j))
                && !file.punct_at(j + 1, '(')
            {
                // Idents followed by `(` are calls (`rule.key()`), not
                // key-material values.
                out.push(Finding {
                    rule: Rule::SecretHygiene,
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "`{}` passed to a format macro — key material must never reach logs or \
                         error strings",
                        file.ct_text(j)
                    ),
                });
            } else if tok.kind == TokenKind::Str {
                for capture in inline_captures(file.ct_text(j)) {
                    if keyish(&capture) {
                        out.push(Finding {
                            rule: Rule::SecretHygiene,
                            path: file.path.clone(),
                            line: tok.line,
                            message: format!(
                                "format string captures `{{{capture}}}` — key material must \
                                 never reach logs or error strings"
                            ),
                        });
                    }
                }
            }
            j += 1;
        }
        ci = j;
    }
}

/// Flags keyish identifiers inside `annotate(...)` call arguments —
/// both the free function (`trace::annotate(..)`) and the
/// `ActiveTrace` method (`t.annotate(..)`). Annotations are captured
/// into the flight recorder and rendered by the status plane, so a
/// key-derived value there is a key in a log.
fn check_trace_annotations(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut ci = 0usize;
    while ci < file.code.len() {
        let head = file.ct(ci).kind == TokenKind::Ident
            && file.ct_text(ci) == "annotate"
            && file.punct_at(ci + 1, '(');
        if !head || file.in_test[ci] {
            ci += 1;
            continue;
        }
        let mut depth = 1usize;
        let mut j = ci + 2;
        while j < file.code.len() && depth > 0 {
            let tok = file.ct(j);
            if file.is_punct(j, '(') {
                depth += 1;
            } else if file.is_punct(j, ')') {
                depth -= 1;
            } else if tok.kind == TokenKind::Ident
                && keyish(file.ct_text(j))
                && !file.punct_at(j + 1, '(')
            {
                out.push(Finding {
                    rule: Rule::SecretHygiene,
                    path: file.path.clone(),
                    line: tok.line,
                    message: format!(
                        "`{}` passed to a trace annotation — span annotations reach the flight \
                         recorder and the status plane's `trace` view; key material must never \
                         be annotated",
                        file.ct_text(j)
                    ),
                });
            }
            j += 1;
        }
        ci = j;
    }
}

/// The macro's delimiter pair, if code token `ci` opens one.
fn macro_delims(file: &SourceFile, ci: usize) -> Option<(char, char)> {
    for (open, close) in [('(', ')'), ('[', ']'), ('{', '}')] {
        if file.punct_at(ci, open) {
            return Some((open, close));
        }
    }
    None
}

/// Identifiers captured inline (`{name}`, `{name:?}`) in a format
/// string literal. `{{` escapes are skipped; positional and spec-only
/// captures yield nothing.
fn inline_captures(literal: &str) -> Vec<String> {
    let mut captures = Vec::new();
    let bytes = literal.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
            i += 2;
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j > i + 1 && !bytes[i + 1].is_ascii_digit() {
            captures.push(literal[i + 1..j].to_owned());
        }
        i = j.max(i + 1);
    }
    captures
}
