//! SA003 — journal-before-ack ordering.
//!
//! Functions annotated `// invariant: journal-before-ack` promise the
//! exactly-once contract: no reply, publish, or dedup-store side
//! effect may happen before the record is appended to the sealed
//! journal. The rule finds the annotated fn's body and flags any
//! send-family call that lexically precedes the first journal-family
//! call. Lexical order is an approximation of dataflow order, but in
//! this codebase the ack path is straight-line code inside these fns,
//! so the approximation is exact where it matters — and a false
//! positive is a prompt to restructure into straight-line form.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{is_call, Finding, Rule};

/// The annotation comment marker.
const ANNOTATION: &str = "invariant: journal-before-ack";

/// Calls that make the record durable.
const JOURNAL_TOKENS: &[&str] = &["append_journal", "commit_record", "append", "commit"];

/// Calls that leak the outcome to a peer or to dedup state.
const SEND_TOKENS: &[&str] = &["send", "try_send", "publish", "dedup_store"];

/// How many code tokens past the annotation the `fn` keyword may sit
/// (attributes, visibility, generics headers).
const FN_SEARCH_WINDOW: usize = 40;

pub(super) fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for ti in 0..file.tokens.len() {
        let tok = &file.tokens[ti];
        if !tok.is_comment() {
            continue;
        }
        // The annotation must be the comment's content, not a mention
        // inside prose (docs discussing the annotation don't bind).
        let body = tok
            .text(&file.bytes)
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim();
        if !body.starts_with(ANNOTATION) {
            continue;
        }
        // First code token after the annotation comment.
        let Some(first) = (0..file.code.len()).find(|&ci| file.ct(ci).start >= tok.end) else {
            continue;
        };
        let fn_ci = (first..(first + FN_SEARCH_WINDOW).min(file.code.len()))
            .find(|&ci| file.ct(ci).kind == TokenKind::Ident && file.ct_text(ci) == "fn");
        let Some(fn_ci) = fn_ci else {
            out.push(Finding {
                rule: Rule::JournalBeforeAck,
                path: file.path.clone(),
                line: tok.line,
                message: "`// invariant: journal-before-ack` is not attached to a fn — place it \
                          directly above the function it constrains"
                    .to_owned(),
            });
            continue;
        };
        check_fn_body(file, fn_ci, tok.line, out);
    }
}

/// Walks the annotated fn's brace-balanced body and enforces the
/// ordering.
fn check_fn_body(file: &SourceFile, fn_ci: usize, annotation_line: u32, out: &mut Vec<Finding>) {
    let Some(open) = (fn_ci..file.code.len()).find(|&ci| file.is_punct(ci, '{')) else {
        return;
    };
    let mut depth = 0usize;
    let mut end = open;
    while end < file.code.len() {
        if file.is_punct(end, '{') {
            depth += 1;
        } else if file.is_punct(end, '}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        end += 1;
    }
    let journal_first =
        (open..end).find(|&ci| JOURNAL_TOKENS.iter().any(|name| is_call(file, ci, name)));
    let Some(journal_first) = journal_first else {
        out.push(Finding {
            rule: Rule::JournalBeforeAck,
            path: file.path.clone(),
            line: annotation_line,
            message: format!(
                "annotated fn contains no journal-append call (looked for {}) — the invariant \
                 cannot hold",
                JOURNAL_TOKENS.join("/")
            ),
        });
        return;
    };
    for ci in open..journal_first {
        if let Some(name) = SEND_TOKENS.iter().find(|name| is_call(file, ci, name)) {
            out.push(Finding {
                rule: Rule::JournalBeforeAck,
                path: file.path.clone(),
                line: file.ct(ci).line,
                message: format!(
                    "`{name}(` before the journal append in a journal-before-ack fn — a crash \
                     here acks a record that was never made durable"
                ),
            });
        }
    }
}
