//! SA001 — panic-freedom on serving paths.
//!
//! `unwrap()` / `expect()` calls and the panic macro family are
//! forbidden in non-test code of the cas/net/fs/core crates: a panic
//! in the reactor or replication threads takes down the whole fleet
//! member, which is exactly the crash-consistency surface the journal
//! exists to protect. Errors must be returned (so middleware can
//! degrade) or carry a reasoned waiver.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{Finding, Rule};

/// Macros whose expansion is an unconditional abort of the thread.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

pub(super) fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for ci in 0..file.code.len() {
        if file.in_test[ci] || file.ct(ci).kind != TokenKind::Ident {
            continue;
        }
        let name = file.ct_text(ci);
        let method_call = (name == "unwrap" || name == "expect")
            && ci > 0
            && file.is_punct(ci - 1, '.')
            && file.punct_at(ci + 1, '(');
        let panic_macro = PANIC_MACROS.contains(&name) && file.punct_at(ci + 1, '!');
        if method_call {
            out.push(Finding {
                rule: Rule::Panic,
                path: file.path.clone(),
                line: file.ct(ci).line,
                message: format!(
                    "`.{name}()` on a serving path — return an error so middleware can degrade, \
                     or waive with `// lint: allow(panic) — <reason>`"
                ),
            });
        } else if panic_macro {
            out.push(Finding {
                rule: Rule::Panic,
                path: file.path.clone(),
                line: file.ct(ci).line,
                message: format!("`{name}!` on a serving path — serving code must not abort"),
            });
        }
    }
}
