//! SA006 — determinism of replay/decode paths.
//!
//! Journal replay and replication decode must be pure functions of the
//! bytes: a follower replaying a sealed chunk has to reach the exact
//! state the leader sealed. Reading `Instant::now()` or
//! `SystemTime::now()` inside those paths smuggles wall-clock state
//! into recovery, which shows up later as divergent replicas. Clock
//! reads belong at the call sites that *produce* records, where the
//! value becomes part of the journaled bytes.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::{Finding, Rule};

/// Type names whose mention means a wall-clock read is nearby.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

pub(super) fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for ci in 0..file.code.len() {
        if file.in_test[ci] || file.ct(ci).kind != TokenKind::Ident {
            continue;
        }
        let name = file.ct_text(ci);
        if CLOCK_TYPES.contains(&name) {
            out.push(Finding {
                rule: Rule::Determinism,
                path: file.path.clone(),
                line: file.ct(ci).line,
                message: format!(
                    "`{name}` in a replay/decode path — replay must be a pure function of the \
                     journal bytes; take timestamps at record-producing call sites instead"
                ),
            });
        }
    }
}
