//! CLI entry point.
//!
//! ```text
//! sinclave-analysis --workspace [--root <dir>] [--manifest <file>]
//! sinclave-analysis [--manifest <file>] <file.rs> [<file.rs>…]
//! ```
//!
//! Prints one `path:line: [SA00N/key] message` diagnostic per finding
//! and exits 1 when any unwaived finding remains, 2 on usage or I/O
//! errors. Waived findings are listed (with their count) so reviewers
//! see what the waiver budget is spent on.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sinclave_analysis::{analyze, workspace, Config, LockManifest, SourceFile};

/// Manifest location relative to the workspace root.
const DEFAULT_MANIFEST: &str = "crates/analysis/lock-order.manifest";

struct Args {
    workspace: bool,
    root: PathBuf,
    manifest: Option<PathBuf>,
    files: Vec<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        manifest: None,
        files: Vec::new(),
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--manifest" => {
                args.manifest = Some(PathBuf::from(it.next().ok_or("--manifest needs a file")?));
            }
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                return Err("usage: sinclave-analysis --workspace [--root <dir>] \
                            [--manifest <file>] | sinclave-analysis [--manifest <file>] \
                            <file.rs>…"
                    .to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err("nothing to analyze: pass --workspace or explicit files".to_owned());
    }
    Ok(args)
}

fn load_manifest(args: &Args) -> Result<LockManifest, String> {
    let path = match &args.manifest {
        Some(p) => p.clone(),
        None => {
            let p = args.root.join(DEFAULT_MANIFEST);
            if !p.exists() {
                // File mode without a workspace manifest: lock-order
                // checking is simply inert.
                return Ok(LockManifest::default());
            }
            p
        }
    };
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    LockManifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_files(args: &Args) -> Result<Vec<SourceFile>, String> {
    let rel_paths: Vec<PathBuf> = if args.workspace {
        workspace::collect_rs_files(&args.root).map_err(|e| format!("walking workspace: {e}"))?
    } else {
        args.files.clone()
    };
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let full = if args.workspace { args.root.join(&rel) } else { rel.clone() };
        let bytes = fs::read(&full).map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let label = rel.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::parse(&label, bytes));
    }
    Ok(files)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let manifest = load_manifest(&args)?;
    let files = load_files(&args)?;
    let file_count = files.len();
    let config = Config { manifest };
    let analysis = analyze(&files, &config);
    for finding in &analysis.findings {
        println!("{finding}");
    }
    if args.verbose {
        for finding in &analysis.waived {
            println!("waived: {finding}");
        }
    }
    println!(
        "sinclave-analysis: {} finding(s), {} waived, {} file(s) checked",
        analysis.findings.len(),
        analysis.waived.len(),
        file_count
    );
    Ok(analysis.findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("sinclave-analysis: {message}");
            ExitCode::from(2)
        }
    }
}
