//! Workspace file discovery: walks the repository for `.rs` files,
//! skipping build output, vendored stubs, VCS metadata, and the
//! analyzer's own rule fixtures (which are violations on purpose).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", ".claude"];

/// Collects workspace-relative paths of every `.rs` file under `root`,
/// sorted for deterministic output.
///
/// # Errors
///
/// Propagates directory-read failures with the offending path.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = fs::read_dir(dir)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let file_type = entry.file_type()?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            files.push(rel.to_path_buf());
        }
    }
    Ok(())
}
