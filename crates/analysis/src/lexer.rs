//! A hand-rolled Rust source lexer for the invariant rules.
//!
//! The registry is unreachable, so there is no `syn`; the rules only
//! need a *token* view that is reliable about the things a text grep
//! gets wrong — string literals (including raw and byte strings),
//! char literals vs. lifetimes, and nested block comments. The lexer
//! works on raw bytes, never panics on arbitrary input (unterminated
//! literals run to end of file), and emits byte-offset spans so every
//! diagnostic can carry an exact `file:line`.
//!
//! Guarantees the proptest corpus pins down:
//!
//! * lexing any byte soup terminates without panicking;
//! * token spans are non-overlapping, strictly ascending, and the
//!   bytes between consecutive tokens are ASCII whitespace only
//!   (nothing is silently swallowed or double-counted);
//! * `//`, `/* */` (nested), `"…"`, `r#"…"#`, `b"…"`, and `'c'`
//!   content never leaks into identifier or punctuation tokens.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer part; `1.5` lexes as `1` `.` `5`).
    Number,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// `// …` comment (doc comments included), without the newline.
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
    /// A single punctuation byte (or an unrecognized byte).
    Punct,
}

/// One token: kind plus its byte span and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text. Lossy on invalid UTF-8 boundaries (returns
    /// the longest valid prefix) — the rules only ever compare against
    /// ASCII names, so this never affects a verdict.
    #[must_use]
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a str {
        let bytes = src.get(self.start..self.end).unwrap_or(&[]);
        match std::str::from_utf8(bytes) {
            Ok(text) => text,
            Err(e) => std::str::from_utf8(&bytes[..e.valid_up_to()]).unwrap_or(""),
        }
    }

    /// Whether this token is a comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// The lexing cursor.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances `n` bytes, counting newlines.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.src.len() {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a line comment starting at `//`.
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a (nested) block comment starting at `/*`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: runs to EOF
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already peeked), honoring
    /// backslash escapes. Unterminated runs to EOF.
    fn quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump_n(2);
            } else if b == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string starting at the `r` (after an optional
    /// `b`), i.e. `r##"…"##`. Returns false if this is not actually a
    /// raw string opener (caller falls back to identifier lexing).
    fn raw_string(&mut self, prefix_len: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(prefix_len + hashes + 1);
        // Scan for `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
        true // unterminated: ran to EOF
    }

    /// Consumes `'…'` or a lifetime; returns the kind. The cursor sits
    /// on the opening `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char: consume escape then scan to closing
                // quote on a short leash (handles `'\u{1f600}'`).
                self.bump_n(2);
                for _ in 0..12 {
                    match self.peek(0) {
                        Some(b'\'') => {
                            self.bump();
                            return TokenKind::Char;
                        }
                        Some(b'\n') | None => return TokenKind::Char,
                        Some(_) => self.bump(),
                    }
                }
                TokenKind::Char
            }
            Some(b) if is_ident_start(b) => {
                // `'a'` is a char, `'a`/`'static`/`'_` are lifetimes.
                let mut len = 0usize;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some(b'\'') {
                    self.bump_n(len + 1);
                    TokenKind::Char
                } else {
                    self.bump_n(len);
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') | Some(b'\n') | None => TokenKind::Punct, // stray quote
            Some(_) => {
                // `'('`-style single char.
                if self.peek(1) == Some(b'\'') {
                    self.bump_n(2);
                    TokenKind::Char
                } else {
                    TokenKind::Punct // stray quote before non-literal
                }
            }
        }
    }
}

/// Lexes `src` into tokens. Total: every non-whitespace byte belongs
/// to exactly one token; never panics.
#[must_use]
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut cursor = Cursor { src, pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(b) = cursor.peek(0) {
        if b.is_ascii_whitespace() {
            cursor.bump();
            continue;
        }
        let (start, line) = (cursor.pos, cursor.line);
        let kind = match b {
            b'/' if cursor.peek(1) == Some(b'/') => {
                cursor.line_comment();
                TokenKind::LineComment
            }
            b'/' if cursor.peek(1) == Some(b'*') => {
                cursor.block_comment();
                TokenKind::BlockComment
            }
            b'"' => {
                cursor.quoted(b'"');
                TokenKind::Str
            }
            b'r' | b'b' if string_prefix(&cursor) => {
                match (b, cursor.peek(1)) {
                    (b'b', Some(b'\'')) => {
                        cursor.bump(); // the b
                        cursor.char_or_lifetime();
                        TokenKind::Char
                    }
                    (b'b', Some(b'"')) => {
                        cursor.bump();
                        cursor.quoted(b'"');
                        TokenKind::Str
                    }
                    (b'b', _) => {
                        // `br…` raw byte string.
                        cursor.raw_string(2);
                        TokenKind::Str
                    }
                    (_, _) => {
                        // `r…` raw string.
                        cursor.raw_string(1);
                        TokenKind::Str
                    }
                }
            }
            b'\'' => cursor.char_or_lifetime(),
            _ if is_ident_start(b) => {
                while cursor.peek(0).is_some_and(is_ident_continue) {
                    cursor.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                while cursor.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    cursor.bump();
                }
                TokenKind::Number
            }
            _ => {
                cursor.bump();
                TokenKind::Punct
            }
        };
        if cursor.pos == start {
            // Defensive: guarantee progress whatever the input.
            cursor.bump();
        }
        tokens.push(Token { kind, start, end: cursor.pos, line });
    }
    tokens
}

/// Whether the cursor (sitting on `r` or `b`) opens a string/char
/// literal rather than an identifier.
fn string_prefix(cursor: &Cursor<'_>) -> bool {
    match (cursor.peek(0), cursor.peek(1)) {
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => {
            // `br"` / `br#`-with-quote.
            let mut hashes = 0usize;
            while cursor.peek(2 + hashes) == Some(b'#') {
                hashes += 1;
            }
            cursor.peek(2 + hashes) == Some(b'"')
        }
        (Some(b'r'), _) => {
            let mut hashes = 0usize;
            while cursor.peek(1 + hashes) == Some(b'#') {
                hashes += 1;
            }
            cursor.peek(1 + hashes) == Some(b'"')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, t.text(src.as_bytes()).to_owned()))
            .collect()
    }

    #[test]
    fn comments_do_not_hide_in_strings_and_vice_versa() {
        let toks = kinds(r#"let s = "// not a comment"; // real"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::LineComment).count(),
            1,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);

        let toks = kinds("/* \" */ unwrap");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"r#"raw " body"# b"bytes" br#"both"# rest"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "rest".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static '\\n' '_ b'x'");
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        assert_eq!((chars, lifetimes), (3, 2), "{toks:?}");
    }

    #[test]
    fn quote_inside_char_literal_does_not_open_a_string() {
        let toks = kinds(r#"let q = '"'; let x = 1;"#);
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Str), "{toks:?}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"open", "// eof comment"] {
            let toks = lex(src.as_bytes());
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn spans_cover_all_non_whitespace_bytes() {
        let src = b"fn f(){ let x = a.b[0] + 'c'; } // t";
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert!(t.start >= pos, "overlap at {}", t.start);
            assert!(src[pos..t.start].iter().all(u8::is_ascii_whitespace));
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert!(src[pos..].iter().all(u8::is_ascii_whitespace));
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = b"a\nb\n\n  c /* x\ny */ d";
        let toks = lex(src);
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4, 5]);
    }
}
