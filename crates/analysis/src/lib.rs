//! # sinclave-analysis — workspace invariant linter
//!
//! A dependency-free static analyzer that turns the prose invariants
//! this codebase runs on — panic-freedom on serving paths, lock-order
//! discipline, journal-before-ack durability, unsafe/secret hygiene,
//! replay determinism — into a CI gate. See `docs/analysis.md` for the
//! rule catalog and waiver syntax.
//!
//! The pipeline is three layers:
//!
//! 1. [`lexer`] — a hand-rolled byte-level Rust lexer that correctly
//!    skips strings, char literals, raw strings, and nested block
//!    comments, and never panics on arbitrary input.
//! 2. [`source`] — the per-file model: code-token view, test-region
//!    marking, waiver comments.
//! 3. [`rules`] — the rule implementations and the waiver-aware
//!    engine ([`rules::analyze`]).
//!
//! No `syn`, no `proc-macro2`: the registry is unreachable in the
//! build environment, and the token-level facts these rules need do
//! not require a full parse.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;
pub mod workspace;

pub use manifest::LockManifest;
pub use rules::{analyze, analyze_file, Analysis, Config, Finding, Rule};
pub use source::SourceFile;
