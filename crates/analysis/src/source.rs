//! Per-file source model shared by every rule: the token stream, a
//! code-token view (comments stripped), `#[cfg(test)]` / `#[test]`
//! region marking, and waiver comments.

use crate::lexer::{self, Token, TokenKind};

/// Waiver syntax: `// lint: allow(<rule-key>) — <reason>`. The
/// separator before the reason may be `—`, `–`, `-`, or `:`.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The waived rule key (`panic`, `lock-order`, …), lowercase.
    pub rule: String,
    /// The stated reason; empty string when missing (itself a finding).
    pub reason: String,
}

/// A `// lint:` comment that did not parse as a waiver.
#[derive(Clone, Debug)]
pub struct MalformedWaiver {
    /// 1-based line of the comment.
    pub line: u32,
    /// Why it did not parse.
    pub problem: &'static str,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw bytes (lexing is byte-based and lossy-safe).
    pub bytes: Vec<u8>,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Parallel to `code`: whether that token is inside test-only code
    /// (`#[cfg(test)]` item, `#[test]`/`#[bench]` fn, or a file under
    /// a `tests/`, `benches/`, or `examples/` directory).
    pub in_test: Vec<bool>,
    /// Parsed waiver comments.
    pub waivers: Vec<Waiver>,
    /// `// lint:` comments that failed to parse.
    pub malformed_waivers: Vec<MalformedWaiver>,
}

impl SourceFile {
    /// Lexes and models one file. `path` should be workspace-relative.
    #[must_use]
    pub fn parse(path: &str, bytes: Vec<u8>) -> SourceFile {
        let tokens = lexer::lex(&bytes);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        let all_test = path_is_test(path);
        let in_test = if all_test {
            vec![true; code.len()]
        } else {
            mark_test_regions(&tokens, &code, &bytes)
        };
        let (waivers, malformed_waivers) = collect_waivers(&tokens, &bytes);
        SourceFile {
            path: path.to_owned(),
            bytes,
            tokens,
            code,
            in_test,
            waivers,
            malformed_waivers,
        }
    }

    /// The text of token `tokens[i]`.
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.bytes)
    }

    /// The code token at code-index `ci`.
    #[must_use]
    pub fn ct(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// The text of the code token at code-index `ci`.
    #[must_use]
    pub fn ct_text(&self, ci: usize) -> &str {
        self.text(self.code[ci])
    }

    /// Whether code token `ci` is punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, ci: usize, p: char) -> bool {
        let t = self.ct(ci);
        t.kind == TokenKind::Punct && self.ct_text(ci) == p.to_string().as_str()
    }

    /// Whether code token `ci` (if present) is punctuation `p`.
    #[must_use]
    pub fn punct_at(&self, ci: usize, p: char) -> bool {
        ci < self.code.len() && self.is_punct(ci, p)
    }
}

/// Files whose entire content is test/bench/example context.
fn path_is_test(path: &str) -> bool {
    path.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Marks code tokens covered by `#[cfg(test)]` / `#[test]` /
/// `#[bench]` items: from the attribute through the end of the
/// following item (its matching `}` or, for brace-less items, `;`).
fn mark_test_regions(tokens: &[Token], code: &[usize], bytes: &[u8]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let text = |ci: usize| tokens[code[ci]].text(bytes);
    let is_p = |ci: usize, p: &str| tokens[code[ci]].kind == TokenKind::Punct && text(ci) == p;
    let mut ci = 0usize;
    while ci < code.len() {
        if !is_p(ci, "#") || ci + 1 >= code.len() || !is_p(ci + 1, "[") {
            ci += 1;
            continue;
        }
        // Collect the attribute's tokens (balanced brackets).
        let attr_start = ci;
        let mut j = ci + 2;
        let mut depth = 1usize;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            if is_p(j, "[") {
                depth += 1;
            } else if is_p(j, "]") {
                depth -= 1;
            } else if tokens[code[j]].kind == TokenKind::Ident {
                attr_idents.push(text(j));
            }
            j += 1;
        }
        let first = attr_idents.first().copied().unwrap_or("");
        let is_test_attr = first == "test"
            || first == "bench"
            || (first == "cfg" && attr_idents.contains(&"test"));
        if !is_test_attr {
            ci = j;
            continue;
        }
        // The attribute covers the next item: skip further attributes,
        // then mark through the matching `}` of the first brace block,
        // or through `;` for brace-less items (`#[cfg(test)] use …;`).
        let mut k = j;
        while k + 1 < code.len() && is_p(k, "#") && is_p(k + 1, "[") {
            let mut d = 1usize;
            k += 2;
            while k < code.len() && d > 0 {
                if is_p(k, "[") {
                    d += 1;
                } else if is_p(k, "]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        let mut end = k;
        let mut brace_depth = 0usize;
        while end < code.len() {
            if is_p(end, "{") {
                brace_depth += 1;
            } else if is_p(end, "}") {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    end += 1;
                    break;
                }
            } else if is_p(end, ";") && brace_depth == 0 {
                end += 1;
                break;
            }
            end += 1;
        }
        for slot in in_test.iter_mut().take(end.min(code.len())).skip(attr_start) {
            *slot = true;
        }
        ci = end.max(j);
    }
    in_test
}

/// Extracts `// lint: allow(key) — reason` waivers from comments.
fn collect_waivers(tokens: &[Token], bytes: &[u8]) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let raw = tok.text(bytes);
        let body =
            raw.trim_start_matches('/').trim_start_matches('*').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedWaiver { line: tok.line, problem: "expected `allow(<rule>)`" });
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push(MalformedWaiver { line: tok.line, problem: "unclosed `allow(`" });
            continue;
        };
        let rule = args[..close].trim().to_ascii_lowercase();
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_owned();
        waivers.push(Waiver { line: tok.line, rule, reason });
    }
    (waivers, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let src = b"fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::parse("crates/cas/src/x.rs", src.to_vec());
        let unwraps: Vec<bool> = (0..f.code.len())
            .filter(|&ci| f.ct_text(ci) == "unwrap")
            .map(|ci| f.in_test[ci])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the module is live again.
        let live2 = (0..f.code.len()).find(|&ci| f.ct_text(ci) == "live2").unwrap();
        assert!(!f.in_test[live2]);
    }

    #[test]
    fn test_fn_attr_marks_only_that_fn() {
        let src = b"#[test]\nfn a() { p(); }\nfn b() { q(); }\n";
        let f = SourceFile::parse("crates/cas/src/x.rs", src.to_vec());
        let p = (0..f.code.len()).find(|&ci| f.ct_text(ci) == "p").unwrap();
        let q = (0..f.code.len()).find(|&ci| f.ct_text(ci) == "q").unwrap();
        assert!(f.in_test[p]);
        assert!(!f.in_test[q]);
    }

    #[test]
    fn files_under_tests_dir_are_all_test() {
        let f = SourceFile::parse("tests/persistence.rs", b"fn f() { x.unwrap(); }".to_vec());
        assert!(f.in_test.iter().all(|&t| t));
    }

    #[test]
    fn waiver_parsing() {
        let src = "// lint: allow(panic) — length checked above\n// lint: allow(secret)\n// lint: deny(panic)\n".as_bytes();
        let f = SourceFile::parse("crates/cas/src/x.rs", src.to_vec());
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rule, "panic");
        assert_eq!(f.waivers[0].reason, "length checked above");
        assert_eq!(f.waivers[1].reason, "");
        assert_eq!(f.malformed_waivers.len(), 1);
    }
}
