//! The declared lock-order manifest.
//!
//! Format (one class per line, `#` comments, blank lines ignored):
//!
//! ```text
//! <rank> <name>[, <alias>...]
//! ```
//!
//! Rank orders acquisition: a lock may only be acquired while holding
//! locks of strictly **lower** rank. Aliases share a rank *and* a
//! class — nesting two same-class guards (two shards of one sharded
//! map) is a violation too, because shard index order is not a
//! discipline anyone audits. Lock names are the **field identifiers**
//! the guard is taken from (`self.volume.lock()` → `volume`), so the
//! manifest doubles as a naming registry: a new lock either gets a
//! fresh, unique field name and a manifest line, or it is unranked and
//! invisible to the rule.

use std::collections::HashMap;

/// One ranked lock class.
#[derive(Clone, Debug)]
pub struct LockClass {
    /// Acquisition rank; lower acquires first.
    pub rank: u32,
    /// Canonical name (the first alias on the manifest line).
    pub name: String,
}

/// The parsed manifest: field identifier → class.
#[derive(Clone, Debug, Default)]
pub struct LockManifest {
    classes: HashMap<String, LockClass>,
}

impl LockManifest {
    /// Parses the manifest text.
    ///
    /// # Errors
    ///
    /// Returns a line-prefixed message for unparseable lines or
    /// duplicate lock names.
    pub fn parse(text: &str) -> Result<LockManifest, String> {
        let mut classes = HashMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (rank_text, names) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("line {}: expected `<rank> <name>[, ...]`", n + 1))?;
            let rank: u32 =
                rank_text.parse().map_err(|_| format!("line {}: bad rank `{rank_text}`", n + 1))?;
            let aliases: Vec<&str> =
                names.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            let canonical = (*aliases
                .first()
                .ok_or_else(|| format!("line {}: rank without lock names", n + 1))?)
            .to_owned();
            for alias in aliases {
                let class = LockClass { rank, name: canonical.clone() };
                if classes.insert(alias.to_owned(), class).is_some() {
                    return Err(format!("line {}: duplicate lock name `{alias}`", n + 1));
                }
            }
        }
        Ok(LockManifest { classes })
    }

    /// The class for a receiver field identifier, if ranked.
    #[must_use]
    pub fn class_of(&self, field: &str) -> Option<&LockClass> {
        self.classes.get(field)
    }

    /// Number of distinct aliases registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no locks are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranks_aliases_and_comments() {
        let m = LockManifest::parse(
            "# comment\n10 journal\n20 volume  # trailing\n30 shards, prepared, tokens\n",
        )
        .unwrap();
        assert_eq!(m.class_of("journal").unwrap().rank, 10);
        assert_eq!(m.class_of("prepared").unwrap().rank, 30);
        assert_eq!(m.class_of("prepared").unwrap().name, "shards");
        assert!(m.class_of("unknown").is_none());
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(LockManifest::parse("10 a\n20 a\n").is_err());
        assert!(LockManifest::parse("ten a\n").is_err());
        assert!(LockManifest::parse("10\n").is_err());
    }
}
