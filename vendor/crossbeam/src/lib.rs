//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, implemented over
//! `std::sync::mpsc`. Unlike crossbeam's, the receiver here is made
//! `Sync` by serializing receivers through a poison-free mutex, which
//! is sufficient for the workspace's message-bus usage.

/// Multi-producer channels with timeouts, mirroring
/// `crossbeam::channel`'s API subset used by the workspace.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    impl<T> Sender<T> {
        /// Sends a message; fails if all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Receives a message, blocking until one arrives.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner().recv()
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        /// Receives a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner().try_recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
    }
}
