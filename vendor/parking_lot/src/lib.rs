//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API:
//! `lock()`, `read()` and `write()` return guards directly. A poisoned
//! std lock (a panic while held) is recovered rather than propagated,
//! matching `parking_lot`'s behavior of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking; `None` when the
    /// lock is contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_yields_none_under_contention() {
        let m = Mutex::new(7);
        {
            let held = m.lock();
            assert!(m.try_lock().is_none());
            assert_eq!(*held, 7);
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 7);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
