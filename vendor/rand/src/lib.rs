//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides exactly the subset of the `rand` 0.8 API the
//! workspace uses: the [`RngCore`] and [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically strong and fast, which is
//! all the simulation and the tests need (nothing here is used for
//! production key material; the workspace treats any `RngCore` as an
//! entropy interface).

/// A random number generator core: the `rand` 0.8 trait subset.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from fixed material.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion,
    /// matching `rand`'s semantics of deriving the full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
