//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub reimplements the subset of proptest's API the workspace uses:
//! the [`strategy::Strategy`] trait with `prop_map`, strategies for
//! integer ranges, tuples, arrays, `Vec`s, `Option`s, regex-shaped
//! strings and value selection, plus the [`proptest!`] /
//! [`prop_assert!`] macro family and a deterministic case runner.
//!
//! Differences from real proptest, acceptable for this workspace:
//! no shrinking (failures report the generated values instead), and a
//! fixed per-test RNG seed derived from the test name, so runs are
//! fully reproducible.

pub mod test_runner {
    //! Deterministic case runner and configuration.

    /// Marker returned by `prop_assume!` rejections.
    pub const ASSUME_REJECT: &str = "__proptest_stub_assume_reject__";

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; this stub trims it so the
            // heavier measurement properties stay fast in CI.
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic generator handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator seeded from the test name, so each property has
        /// a stable, independent stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }
    }

    /// Drives a property: generates cases until `config.cases` pass.
    ///
    /// # Panics
    ///
    /// Panics when the property returns an error (assertion failure)
    /// or when `prop_assume!` rejects too many candidate cases.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        let mut rng = TestRng::for_test(name);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        while passed < config.cases {
            attempts += 1;
            assert!(
                attempts <= config.cases.saturating_mul(20).max(100),
                "property {name}: too many cases rejected by prop_assume!"
            );
            match property(&mut rng) {
                Ok(()) => passed += 1,
                Err(e) if e == ASSUME_REJECT => {}
                Err(e) => panic!("property {name} failed after {passed} passing cases: {e}"),
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map_fn`.
        fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map_fn }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        map_fn: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map_fn)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

    /// String literals act as regex strategies (proptest idiom).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::Pattern::parse(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }

    /// A boxed generator closure — one `prop_oneof!` arm.
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// One-of-N union used by `prop_oneof!`: arms are boxed generator
    /// closures so heterogeneous strategy types can share a value type.
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from boxed arms (use [`Union::arm`]).
        #[must_use]
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Boxes one strategy as a union arm.
        pub fn arm<S>(strategy: S) -> UnionArm<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            Box::new(move |rng| strategy.generate(rng))
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.arms.len() as u64) as usize;
            (self.arms[index])(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with `len ∈ size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (3 in 4 cases are `Some`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// Generates `None` or `Some(element)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Selects uniformly from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty list");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    //! Regex-shaped string generation.
    //!
    //! Supports the subset the workspace uses: literal characters,
    //! `.`, character classes `[a-z0-9_-]`, and `{m}` / `{m,n}`
    //! quantifiers over single atoms.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A parsed generator pattern.
    #[derive(Clone, Debug)]
    pub struct Pattern {
        atoms: Vec<(Atom, usize, usize)>,
    }

    #[derive(Clone, Debug)]
    enum Atom {
        /// Any printable ASCII character.
        Dot,
        /// An explicit character set.
        Set(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    impl Pattern {
        /// Parses the supported regex subset.
        ///
        /// # Errors
        ///
        /// Returns a description of the first unsupported construct.
        pub fn parse(pattern: &str) -> Result<Self, String> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut i = 0;
            let mut atoms = Vec::new();
            while i < chars.len() {
                let atom = match chars[i] {
                    '.' => {
                        i += 1;
                        Atom::Dot
                    }
                    '[' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == ']')
                            .ok_or_else(|| "unterminated character class".to_owned())?
                            + i;
                        let mut set = Vec::new();
                        let mut j = i + 1;
                        while j < close {
                            if j + 2 < close && chars[j + 1] == '-' {
                                let (lo, hi) = (chars[j], chars[j + 2]);
                                if lo > hi {
                                    return Err(format!("bad range {lo}-{hi}"));
                                }
                                set.extend(lo..=hi);
                                j += 3;
                            } else {
                                set.push(chars[j]);
                                j += 1;
                            }
                        }
                        if set.is_empty() {
                            return Err("empty character class".to_owned());
                        }
                        i = close + 1;
                        Atom::Set(set)
                    }
                    '\\' => {
                        i += 1;
                        let c = *chars.get(i).ok_or_else(|| "trailing backslash".to_owned())?;
                        i += 1;
                        Atom::Lit(c)
                    }
                    c @ ('*' | '+' | '?' | '(' | ')' | '|') => {
                        return Err(format!("unsupported regex construct {c:?}"));
                    }
                    c => {
                        i += 1;
                        Atom::Lit(c)
                    }
                };
                let (min, max) = if chars.get(i) == Some(&'{') {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| "unterminated quantifier".to_owned())?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (lo, hi),
                        None => (body.as_str(), body.as_str()),
                    };
                    let lo: usize = lo.trim().parse().map_err(|_| "bad quantifier")?;
                    let hi: usize = hi.trim().parse().map_err(|_| "bad quantifier")?;
                    if lo > hi {
                        return Err("inverted quantifier".to_owned());
                    }
                    i = close + 1;
                    (lo, hi)
                } else {
                    (1, 1)
                };
                atoms.push((atom, min, max));
            }
            Ok(Pattern { atoms })
        }

        /// Generates one string matching the pattern.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (atom, min, max) in &self.atoms {
                let count = min + rng.below((max - min + 1) as u64) as usize;
                for _ in 0..count {
                    match atom {
                        Atom::Dot => {
                            out.push(char::from(0x20 + rng.below(0x5f) as u8));
                        }
                        Atom::Set(set) => {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                        Atom::Lit(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }

    impl Strategy for Pattern {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            Pattern::generate(self, rng)
        }
    }

    /// Compiles a regex subset into a string strategy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unsupported construct.
    pub fn string_regex(pattern: &str) -> Result<Pattern, String> {
        Pattern::parse(pattern)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `fn name(binding in strategy, …) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&$config, stringify!($name), |__proptest_rng| {
                $(let $binding =
                    $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}",
                file!(), line!(), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assert_eq failed at {}:{} ({}): {:?} != {:?}",
                file!(), line!(), format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assert_ne failed at {}:{}: both {:?}",
                file!(), line!(), left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assert_ne failed at {}:{} ({}): both {:?}",
                file!(), line!(), format!($($fmt)+), left
            ));
        }
    }};
}

/// Rejects the current case (regenerates instead of failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::ASSUME_REJECT.to_owned());
        }
    };
}

/// Picks uniformly between heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn assume_rejects(mut x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            x += 2;
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn regex_strings(s in "[a-c]{2,4}", t in ".{0,3}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 3);
        }
    }

    #[test]
    fn string_regex_parses_and_rejects() {
        assert!(crate::string::string_regex("[a-z][a-z0-9_]{0,8}").is_ok());
        assert!(crate::string::string_regex("(group)").is_err());
        assert!(crate::string::string_regex("[unclosed").is_err());
    }

    #[test]
    fn select_draws_from_list() {
        let s = crate::sample::select(vec![7, 8, 9]);
        let mut rng = crate::test_runner::TestRng::for_test("select");
        for _ in 0..20 {
            assert!((7..=9).contains(&Strategy::generate(&s, &mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "property sample failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(1), "sample", |_rng| {
            Err("boom".to_owned())
        });
    }
}
