//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides the API subset the workspace's benches use —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistics
//! engine. Each benchmark prints `id … time: <mean>` (plus throughput
//! when configured). Passing `--test` (as `cargo test` does for bench
//! targets) runs every closure exactly once for a smoke check, and a
//! free argument acts as a substring filter like criterion's.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self, group: &str) -> String {
        match &self.parameter {
            Some(p) => format!("{group}/{}/{p}", self.function),
            None => format!("{group}/{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: function.to_owned(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function, parameter: None }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    measurement_time: Duration,
    /// Mean time per iteration of the last `iter` call.
    elapsed: Option<Duration>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full timing loop.
    Measure,
    /// Run each closure once (`--test`).
    Smoke,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            self.elapsed = Some(Duration::ZERO);
            return;
        }
        // Warmup + calibration: one untimed call.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed();

        // Pick an iteration count that fits the measurement budget.
        let budget = self.measurement_time;
        let iters = if first.is_zero() {
            1000
        } else {
            (budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 100_000) as u32
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = Some(start.elapsed() / iters);
    }
}

/// Shared settings for a group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; warmup is a single untimed call.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.render(&self.name);
        let throughput = self.throughput;
        let time = self.measurement_time;
        let mut routine = routine;
        self.criterion.run(&name, throughput, time, |b| routine(b, input));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into().render(&self.name);
        let throughput = self.throughput;
        let time = self.measurement_time;
        self.criterion.run(&name, throughput, time, routine);
        self
    }

    /// Ends the group (statistics teardown in real criterion).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                // Harness flags cargo may pass; no statistics engine to
                // configure, so they are accepted and ignored.
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_millis(300),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(id, None, Duration::from_millis(300), routine);
        self
    }

    fn run(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        measurement_time: Duration,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { mode: self.mode, measurement_time, elapsed: None };
        routine(&mut bencher);
        match (self.mode, bencher.elapsed) {
            (Mode::Smoke, _) => println!("{name} ... ok (smoke)"),
            (Mode::Measure, Some(mean)) => match throughput {
                Some(Throughput::Bytes(bytes)) => {
                    let rate = bytes as f64 / mean.as_secs_f64() / 1e6;
                    println!("{name}  time: {mean:>12.2?}  thrpt: {rate:>10.1} MB/s");
                }
                Some(Throughput::Elements(n)) => {
                    let rate = n as f64 / mean.as_secs_f64();
                    println!("{name}  time: {mean:>12.2?}  thrpt: {rate:>10.1} elem/s");
                }
                None => println!("{name}  time: {mean:>12.2?}"),
            },
            (Mode::Measure, None) => println!("{name} ... no measurement"),
        }
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { mode: Mode::Smoke, filter: None };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("f", "1 KB"), &1024usize, |b, &n| {
            b.iter(|| n * 2);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion { mode: Mode::Smoke, filter: Some("nomatch".into()) };
        let mut ran = false;
        c.bench_function("something-else", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn measure_mode_produces_elapsed() {
        let mut bencher = Bencher {
            mode: Mode::Measure,
            measurement_time: Duration::from_millis(5),
            elapsed: None,
        };
        bencher.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(bencher.elapsed.is_some());
    }
}
