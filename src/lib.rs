//! Integration facade for the SinClave reproduction workspace.
//!
//! This crate only re-exports the workspace members under one roof so
//! examples and cross-crate integration tests can `use sinclave_repro::…`.
//! The actual functionality lives in the individual crates:
//!
//! * [`crypto`] — SHA-256 (interruptible), RSA, AEAD, …
//! * [`sgx`] — the simulated SGX platform
//! * [`net`] — in-process network and secure channels
//! * [`fs`] — encrypted filesystem
//! * [`core`] — the SinClave mechanism itself
//! * [`runtime`] — SCONE-like / SGX-LKL-like enclave runtimes
//! * [`cas`] — the verifier (Configuration and Attestation Service)
//! * [`attack`] — the remote-attestation reuse attack

#![forbid(unsafe_code)]

pub use sinclave as core;
pub use sinclave_attack as attack;
pub use sinclave_cas as cas;
pub use sinclave_crypto as crypto;
pub use sinclave_fs as fs;
pub use sinclave_net as net;
pub use sinclave_runtime as runtime;
pub use sinclave_sgx as sgx;
