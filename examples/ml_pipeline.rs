//! The heavier Fig. 9 workloads — OpenVINO-style inference and
//! PyTorch-style training — run under both the baseline and the
//! SinClave flow, printing the relative startup overhead (a miniature
//! of the paper's macro-benchmark).
//!
//! Run with: `cargo run --release --example ml_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::CasServer;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, SconeHost, StartOptions};
use sinclave_repro::runtime::workload::{self, Workload};
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;
use std::time::Instant;

fn run_workload(w: &Workload, singleton: bool, seed: u64) -> std::time::Duration {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng, 1024).unwrap();
    let platform = Arc::new(Platform::with_epc_pages(&mut rng, 1 << 20));
    service.register_platform(platform.manufacturing_record());
    let qe =
        Arc::new(QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap());
    let network = Network::new();
    let host = SconeHost::new(platform, qe, network.clone());

    let image = if singleton { w.image.clone().sinclave_aware() } else { w.image.clone() };
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let packaged = package_app(&image, &signer_key, &SignerConfig::default()).unwrap();
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let cas = CasServer::new(
        channel_key,
        signer_key.clone(),
        service.root_public_key().clone(),
        CasStore::create(AeadKey::new([4; 32])),
    );
    cas.add_policy(SessionPolicy {
        config_id: "ml".into(),
        expected_common: packaged.signed.common_measurement(),
        expected_mrsigner: signer_key.public_key().fingerprint(),
        min_isv_svn: 0,
        allow_debug: false,
        mode: PolicyMode::Either,
        config: w.config.clone(),
    })
    .unwrap();
    let cas_thread = cas.serve(&network, "cas:443", 2, seed);

    let opts = StartOptions::new("cas:443", "ml").with_volume(w.volume.clone()).with_seed(seed);
    let start = Instant::now();
    let app = if singleton {
        host.start_sinclave(&packaged, &opts).expect("sinclave run")
    } else {
        host.start_baseline(&packaged, &opts).expect("baseline run")
    };
    let elapsed = start.elapsed();
    assert!(app.outcome.stdout.last().unwrap().ends_with("-done"));
    // Unblock the CAS for the baseline case (only one connection used).
    let _ = network.connect("cas:443");
    cas_thread.join().unwrap();
    elapsed
}

fn main() {
    println!("workload     baseline      sinclave      overhead");
    println!("--------     --------      --------      --------");
    for (make, seed) in [
        (workload::openvino_inference as fn(u64) -> Workload, 1u64),
        (workload::pytorch_training, 2),
    ] {
        // Fresh volumes per run: workloads write into them.
        let scale = 4;
        let baseline = run_workload(&make(scale), false, seed);
        let sinclave = run_workload(&make(scale), true, seed + 10);
        let overhead =
            (sinclave.as_secs_f64() - baseline.as_secs_f64()) / baseline.as_secs_f64() * 100.0;
        let name = make(scale).name;
        println!("{name:<12} {baseline:>10.1?}   {sinclave:>10.1?}   {overhead:>+7.2}%");
    }
    println!();
    println!("(The SinClave delta is the singleton grant + on-demand SigStruct");
    println!(" round trip, amortized over the workload — the paper's Fig. 9.)");
}
