//! The paper's §3.3.1 remote-attestation reuse attack, end to end —
//! first succeeding against a baseline deployment, then being stopped
//! by SinClave.
//!
//! Run with: `cargo run --example reuse_attack`

use sinclave_repro::attack::scone_attack::{run_reuse_attack, AttackEnvironment};
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::CasServer;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, PackagedApp, SconeHost};
use sinclave_repro::runtime::ProgramImage;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

struct Deployment {
    host: SconeHost,
    cas: Arc<CasServer>,
    network: Network,
    packaged: PackagedApp,
}

fn deploy(seed: u64, image: ProgramImage, mode: PolicyMode) -> Deployment {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng, 1024).unwrap();
    let platform = Arc::new(Platform::new(&mut rng));
    service.register_platform(platform.manufacturing_record());
    let qe =
        Arc::new(QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap());
    let network = Network::new();
    let host = SconeHost::new(platform, qe, network.clone());

    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let packaged = package_app(&image, &signer_key, &SignerConfig::default()).unwrap();
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let cas = CasServer::new(
        channel_key,
        signer_key.clone(),
        service.root_public_key().clone(),
        CasStore::create(AeadKey::new([2; 32])),
    );
    cas.add_policy(SessionPolicy {
        config_id: "python-app".into(),
        expected_common: packaged.signed.common_measurement(),
        expected_mrsigner: signer_key.public_key().fingerprint(),
        min_isv_svn: 0,
        allow_debug: false,
        mode,
        config: AppConfig {
            entry: "main.py".into(),
            volume_key: Some([0x77; 32]),
            secrets: vec![("db-password".into(), b"correct horse battery staple".to_vec())],
            ..AppConfig::default()
        },
    })
    .unwrap();
    Deployment { host, cas, network, packaged }
}

fn main() {
    println!("=== Phase 1: the reuse attack against a BASELINE deployment ===");
    let victim_image = ProgramImage::interpreter("python-3.8", 8);
    let d = deploy(1, victim_image, PolicyMode::Baseline);
    let cas_thread = d.cas.serve(&d.network, "cas:443", 1, 10);
    let env = AttackEnvironment {
        host: SconeHost::new(d.host.platform.clone(), d.host.qe.clone(), d.network.clone()),
        cas_addr: "cas:443".into(),
        config_id: "python-app".into(),
        victim: d.packaged.clone(),
    };
    println!("[adversary] starting the victim's genuine Python enclave as a report server…");
    println!("[adversary] running the TEE impersonator against the real CAS…");
    match run_reuse_attack(&env, false, 42) {
        Ok(loot) => {
            println!("[adversary] ATTACK SUCCEEDED — stolen configuration:");
            println!(
                "[adversary]   db-password = {:?}",
                String::from_utf8_lossy(loot.config.secret("db-password").unwrap())
            );
            println!("[adversary]   volume key  = {:02x?}…", &loot.config.volume_key.unwrap()[..4]);
        }
        Err(e) => println!("[adversary] attack failed unexpectedly: {e}"),
    }
    cas_thread.join().unwrap();

    println!();
    println!("=== Phase 2: the same attack against a SINCLAVE deployment ===");
    let hardened_image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let d = deploy(2, hardened_image, PolicyMode::Singleton);
    let cas_thread = d.cas.serve(&d.network, "cas:443", 1, 20);
    let env = AttackEnvironment {
        host: SconeHost::new(d.host.platform.clone(), d.host.qe.clone(), d.network.clone()),
        cas_addr: "cas:443".into(),
        config_id: "python-app".into(),
        victim: d.packaged.clone(),
    };
    match run_reuse_attack(&env, false, 43) {
        Ok(_) => println!("[adversary] attack succeeded — THIS MUST NOT HAPPEN"),
        Err(e) => {
            println!("[adversary] attack DEFEATED: {e}");
            println!("[defense] the SinClave-aware runtime refused the adversary's");
            println!("[defense] configuration, so no report server could be built;");
            println!("[defense] and the CAS policy additionally requires one-time");
            println!("[defense] singleton tokens that only fresh enclaves can redeem.");
        }
    }
    // Unblock the CAS accept loop and exit.
    let _ = d.network.connect("cas:443");
    cas_thread.join().unwrap();
}
