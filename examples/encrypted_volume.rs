//! The SCONE "Python with encrypted volume" demo (the paper's first
//! Fig. 9 workload): an interpreter enclave attests, receives the
//! volume key from the verifier, and processes files the host can
//! neither read nor tamper with.
//!
//! Run with: `cargo run --example encrypted_volume`

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::CasServer;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, SconeHost, StartOptions};
use sinclave_repro::runtime::ProgramImage;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // The user prepares an encrypted volume with their application and
    // data. The host only ever sees ciphertext.
    let volume_key_bytes = [0x55; 32];
    let volume_key = AeadKey::new(volume_key_bytes);
    let mut volume = Volume::format(&volume_key, "customer-data");
    volume
        .write_file(
            &volume_key,
            "main.py",
            b"read customers.csv -> data\n\
              compute mix 2 -> digest\n\
              concat $data $digest -> report\n\
              write report.bin $report\n\
              print processed",
        )
        .unwrap();
    volume.write_file(&volume_key, "customers.csv", b"alice,42\nbob,17\ncarol,99").unwrap();
    println!(
        "[user] encrypted volume prepared: {} ciphertext bytes on disk",
        volume.size_on_disk()
    );
    // Demonstrate host opacity.
    assert!(volume.read_file(&AeadKey::new([0; 32]), "customers.csv").is_err());
    println!("[host] cannot read volume content without the key ✓");
    let shared_volume = Arc::new(Mutex::new(volume));

    // Infrastructure.
    let service = AttestationService::new(&mut rng, 1024).unwrap();
    let platform = Arc::new(Platform::new(&mut rng));
    service.register_platform(platform.manufacturing_record());
    let qe =
        Arc::new(QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap());
    let network = Network::new();
    let host = SconeHost::new(platform, qe, network.clone());

    // Package the interpreter; register the policy whose config holds
    // the volume key — released only to an attested singleton.
    let image = ProgramImage::interpreter("python-3.8", 8).sinclave_aware();
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let packaged = package_app(&image, &signer_key, &SignerConfig::default()).unwrap();
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let cas = CasServer::new(
        channel_key,
        signer_key.clone(),
        service.root_public_key().clone(),
        CasStore::create(AeadKey::new([3; 32])),
    );
    cas.add_policy(SessionPolicy {
        config_id: "volume-demo".into(),
        expected_common: packaged.signed.common_measurement(),
        expected_mrsigner: signer_key.public_key().fingerprint(),
        min_isv_svn: 0,
        allow_debug: false,
        mode: PolicyMode::Singleton,
        config: AppConfig {
            entry: "main.py".into(),
            volume_key: Some(volume_key_bytes),
            ..AppConfig::default()
        },
    })
    .unwrap();
    let cas_thread = cas.serve(&network, "cas:443", 2, 5);

    // Run.
    let app = host
        .start_sinclave(
            &packaged,
            &StartOptions::new("cas:443", "volume-demo")
                .with_volume(shared_volume.clone())
                .with_seed(4),
        )
        .expect("attested start");
    cas_thread.join().unwrap();

    for line in &app.outcome.stdout {
        println!("[app] {line}");
    }
    let report = shared_volume.lock().read_file(&volume_key, "report.bin").expect("report written");
    println!("[user] report.bin written inside the encrypted volume ({} bytes)", report.len());

    // Host tampering after the fact is detected.
    {
        let mut vol = shared_volume.lock();
        let ids = vol.raw_chunk_ids();
        vol.corrupt_chunk(ids[0]);
    }
    let tampered = shared_volume.lock().read_file(&volume_key, "main.py");
    println!("[user] tampered chunk detected on read: {:?}", tampered.unwrap_err());
}
