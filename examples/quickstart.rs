//! Quickstart: sign a program, deploy it as a SinClave singleton, and
//! watch the verifier hand it its secrets — then see a second start of
//! the *same* enclave get refused.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::CasServer;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, SconeHost, StartOptions};
use sinclave_repro::runtime::ProgramImage;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // ---- Infrastructure: a simulated SGX machine --------------------
    let service = AttestationService::new(&mut rng, 1024).expect("attestation service");
    let platform = Arc::new(Platform::new(&mut rng));
    service.register_platform(platform.manufacturing_record());
    let qe = Arc::new(
        QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).expect("qe"),
    );
    let network = Network::new();
    let host = SconeHost::new(platform, qe, network.clone());
    println!("[host] simulated SGX platform ready");

    // ---- Signer: package a SinClave-aware application ---------------
    let image = ProgramImage::with_entry(
        "hello-singleton",
        "secret greeting -> g\nprint $g\ncompute mix 1 -> checksum",
        4,
    )
    .sinclave_aware();
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).expect("signer key");
    let packaged = package_app(&image, &signer_key, &SignerConfig::default()).expect("package");
    println!(
        "[signer] packaged `{}`: common MRENCLAVE {}…, base hash exported",
        image.name,
        &packaged.signed.common_measurement().to_hex()[..16]
    );

    // ---- Verifier: CAS with one singleton-only policy ---------------
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("channel key");
    let cas = CasServer::new(
        channel_key,
        signer_key,
        service.root_public_key().clone(),
        CasStore::create(AeadKey::new([1; 32])),
    );
    cas.add_policy(SessionPolicy {
        config_id: "hello".into(),
        expected_common: packaged.signed.common_measurement(),
        expected_mrsigner: packaged.signed.common_sigstruct.mrsigner(),
        min_isv_svn: 0,
        allow_debug: false,
        mode: PolicyMode::Singleton,
        config: AppConfig {
            entry: "embedded".into(),
            secrets: vec![("greeting".into(), b"hello, fresh singleton!".to_vec())],
            ..AppConfig::default()
        },
    })
    .expect("policy");
    let cas_thread = cas.serve(&network, "cas:443", 4, 99);
    println!("[cas] serving at cas:443 (identity {}…)", &cas.identity().to_hex()[..16]);

    // ---- Start a singleton -------------------------------------------
    let app = host
        .start_sinclave(&packaged, &StartOptions::new("cas:443", "hello").with_seed(1))
        .expect("singleton start");
    println!(
        "[enclave] singleton MRENCLAVE {}… (differs from common)",
        &app.enclave.mrenclave().to_hex()[..16]
    );
    for line in &app.outcome.stdout {
        println!("[app] {line}");
    }

    // ---- A second singleton is a *different* enclave ----------------
    let app2 = host
        .start_sinclave(&packaged, &StartOptions::new("cas:443", "hello").with_seed(2))
        .expect("second singleton start");
    println!(
        "[enclave] second singleton MRENCLAVE {}… — unique per start",
        &app2.enclave.mrenclave().to_hex()[..16]
    );
    assert_ne!(app.enclave.mrenclave(), app2.enclave.mrenclave());

    drop(cas_thread);
    println!("[done] two attested starts, two unique measurements, zero reuse");
}
